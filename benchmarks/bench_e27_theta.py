"""E27 — θ-band indexes: the eq2/eq15-shaped θ-correlated sweep.

Three engines over the θ-correlated lateral family
(:func:`repro.workloads.sweeps.theta_aggregate_query`, the eq2-shaped
non-grouped :func:`theta_rows_query`, and the join-inner
:func:`theta_join_aggregate_query`):

* **band** — the planner with the θ-band index (the default): the inner
  rows are materialized once, sorted on the correlated attribute with
  per-key prefix-aggregate arrays, so each outer row costs a bisect plus
  an O(1) array read;
* **per-row** — the planner with ``decorrelate=False``: the inner scope is
  re-evaluated under every outer environment (the paper's literal FOI
  strategy, kept as the oracle);
* **sqlite warm** — the SQLite backend, which runs the γ∅ shapes as
  correlated scalar subqueries and the non-grouped shape unnested.

Representative numbers from the machine this pass was built on
(CPython 3.11, SQL conventions, min over rounds):

=============================================  =========  ==========  ===========
case                                           band       per-row     sqlite warm
=============================================  =========  ==========  ===========
γ∅ sum, s.A < r.A, n=200                         ~1.6 ms    ~85 ms       ~3.1 ms
γ∅ sum, s.A < r.A, n=800                         ~6.2 ms  ~1371 ms      ~43.5 ms
γ∅ count + eq key bucket, n=800                 ~10.4 ms   ~329 ms      ~47.9 ms
non-grouped slice (eq2 shape), n=800             ~304 ms  ~2400 ms      ~297 ms
join inner (θ eq10 shape), n=400                 ~3.2 ms  ~1440 ms      ~71.4 ms
=============================================  =========  ==========  ===========

The γ∅ shape is the paper's eq15; per-row cost is Θ(outer × inner) even
with the execution layer (the order predicate defeats hash probes), while
the band path is Θ((outer + inner) log inner) — ~220× at n=800.  The
join-shaped inner re-runs S ⋈ T per outer row under FOI — the honest θ
cost model — and the band path wins ~450×.  The non-grouped slice probe is
output-bound (it yields ~5% of the inner rows per outer row), so its ~8×
is the slice-enumeration floor, not a log-time probe.  The acceptance
claim (≥ 5×) is asserted below and gated in CI.
"""

import os
import time

import pytest

import _common
from repro.core.conventions import SQL_CONVENTIONS
from repro.engine import evaluate
from repro.workloads import sweeps


def _band(query, db):
    return evaluate(query, db, SQL_CONVENTIONS)


def _per_row(query, db):
    return evaluate(query, db, SQL_CONVENTIONS, decorrelate=False)


def _sqlite(query, db):
    return evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")


def _agg_db(n):
    return sweeps.theta_sweep_database(n, n, band_domain=max(8, n), seed=2)


def _rows_db(n):
    # Outer band values near the top of the domain keep the matching
    # slices (≈5% of the inner rows) from dominating the output size.
    db = sweeps.theta_sweep_database(n, n, band_domain=20 * n, seed=3)
    return db


# -- γ∅ θ aggregate (the eq15 shape) -------------------------------------------


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_theta_band(benchmark, n_rows):
    db = _agg_db(n_rows)
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    result = benchmark(_band, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_theta_per_row(benchmark, n_rows):
    db = _agg_db(n_rows)
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    benchmark(_per_row, query, db)


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_theta_sqlite_warm(benchmark, n_rows):
    db = _agg_db(n_rows)
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    _sqlite(query, db)  # prime the catalog cache
    result = benchmark(_sqlite, query, db)
    assert result == _per_row(query, db)


# -- γ∅ θ aggregate bucketed by an equality key --------------------------------


@pytest.mark.parametrize("n_rows", [800])
def test_bucketed_theta_band(benchmark, n_rows):
    db = sweeps.theta_sweep_database(
        n_rows, n_rows, eq_arity=1, band_domain=max(8, n_rows), seed=4
    )
    query = sweeps.theta_aggregate_query(op="<=", agg="count", eq_arity=1)
    result = benchmark(_band, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [800])
def test_bucketed_theta_per_row(benchmark, n_rows):
    db = sweeps.theta_sweep_database(
        n_rows, n_rows, eq_arity=1, band_domain=max(8, n_rows), seed=4
    )
    query = sweeps.theta_aggregate_query(op="<=", agg="count", eq_arity=1)
    benchmark(_per_row, query, db)


# -- non-grouped θ slice (the eq2 shape) ---------------------------------------


@pytest.mark.parametrize("n_rows", [200, 800])
def test_rows_theta_band(benchmark, n_rows):
    db = _rows_db(n_rows)
    query = sweeps.theta_rows_query(op=">")
    result = benchmark(_band, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [200])
def test_rows_theta_per_row(benchmark, n_rows):
    db = _rows_db(n_rows)
    query = sweeps.theta_rows_query(op=">")
    benchmark(_per_row, query, db)


# -- θ join inner (the headline sweep) -----------------------------------------


@pytest.mark.parametrize("n_rows", [100, 400])
def test_join_theta_band(benchmark, n_rows):
    db = sweeps.theta_sweep_database(
        n_rows, n_rows, band_domain=max(8, n_rows), seed=5, with_join=True
    )
    query = sweeps.theta_join_aggregate_query()
    result = benchmark(_band, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [100])
def test_join_theta_per_row(benchmark, n_rows):
    db = sweeps.theta_sweep_database(
        n_rows, n_rows, band_domain=max(8, n_rows), seed=5, with_join=True
    )
    query = sweeps.theta_join_aggregate_query()
    benchmark(_per_row, query, db)


@pytest.mark.parametrize("n_rows", [400])
def test_join_theta_sqlite_warm(benchmark, n_rows):
    db = sweeps.theta_sweep_database(
        n_rows, n_rows, band_domain=max(8, n_rows), seed=5, with_join=True
    )
    query = sweeps.theta_join_aggregate_query()
    _sqlite(query, db)
    result = benchmark(_sqlite, query, db)
    assert result == _per_row(query, db)


def _best_of(fn, query, db, rounds):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn(query, db)
        times.append(time.perf_counter() - start)
    return min(times)


def test_band_beats_per_row_by_5x_on_the_theta_sweeps():
    """Acceptance claim (CI perf gate): on the E27 eq15-shaped γ∅ sweep and
    the θ join-inner sweep, the band-indexed planner is ≥ 5× faster than
    per-row lateral evaluation.

    A wall-clock ordering with a wide margin (measured ~50×/~100×); skipped
    on shared CI runners unless ``RUN_TIMING_ASSERTIONS=1`` — the dedicated
    perf-gate job sets it, so a regression below the 5× floor fails the
    build.  Counter-based guards (``lateral_reevals == 0``, one
    ``band_index_builds``) pin the same property structurally in
    ``tests/engine/test_perf_smoke.py``.
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")

    gamma_db = _agg_db(800)
    gamma_query = sweeps.theta_aggregate_query(op="<", agg="sum")
    assert _band(gamma_query, gamma_db) == _per_row(gamma_query, gamma_db)
    gamma_band = _best_of(_band, gamma_query, gamma_db, rounds=5)
    gamma_per_row = _best_of(_per_row, gamma_query, gamma_db, rounds=3)

    join_db = sweeps.theta_sweep_database(
        400, 400, band_domain=400, seed=5, with_join=True
    )
    join_query = sweeps.theta_join_aggregate_query()
    assert _band(join_query, join_db) == _per_row(join_query, join_db)
    join_band = _best_of(_band, join_query, join_db, rounds=5)
    join_per_row = _best_of(_per_row, join_query, join_db, rounds=3)

    _common.record_metric(
        "e27_acceptance",
        gamma_band_ms=round(gamma_band * 1e3, 3),
        gamma_per_row_ms=round(gamma_per_row * 1e3, 3),
        gamma_speedup=round(gamma_per_row / gamma_band, 1),
        join_band_ms=round(join_band * 1e3, 3),
        join_per_row_ms=round(join_per_row * 1e3, 3),
        join_speedup=round(join_per_row / join_band, 1),
    )
    assert gamma_per_row > 5 * gamma_band, (
        f"γ∅ sweep: band {gamma_band * 1e3:.2f} ms vs "
        f"per-row {gamma_per_row * 1e3:.2f} ms"
    )
    assert join_per_row > 5 * join_band, (
        f"join sweep: band {join_band * 1e3:.2f} ms vs "
        f"per-row {join_per_row * 1e3:.2f} ms"
    )


def test_trace_artifact_for_the_theta_sweep(tmp_path):
    """Export the E27 γ∅ sweep as a Chrome-trace artifact.

    Runs the eq15-shaped workload cold and warm under a recording tracer
    and writes trace-viewer JSON to ``$TRACE_OUT`` (the benchmark-smoke CI
    job sets ``TRACE_OUT=TRACE_E27.json`` and uploads it per run, so every
    build leaves an inspectable timeline) or to a tmp file otherwise.
    """
    import json

    from repro.api import EvalOptions, Session
    from repro.obs import Tracer, write_chrome_trace

    db = _agg_db(200)
    session = Session(db, SQL_CONVENTIONS, options=EvalOptions())
    session.tracer = Tracer(stats=session.stats)
    prepared = session.prepare(sweeps.theta_aggregate_query(op="<", agg="sum"))
    prepared.run()  # cold: decorr.index.build shows up in the timeline
    prepared.run()  # warm: the cached-index round for comparison
    spans, events = session.tracer.take()

    path = os.environ.get("TRACE_OUT") or str(tmp_path / "TRACE_E27.json")
    document = write_chrome_trace(path, spans, events)

    with open(path, encoding="utf-8") as handle:
        assert json.load(handle) == document
    names = {e["name"] for e in document["traceEvents"] if e["ph"] == "X"}
    assert {"query", "execute", "scope.execute", "decorr.index.build"} <= names
    assert len({e["tid"] for e in document["traceEvents"]}) == 2  # two runs
    _common.record_metric(
        "e27_trace_artifact",
        path=path,
        spans=len(spans),
        events=len(events),
    )
