"""Benchmark-harness plumbing: path setup and machine-readable results.

``--json PATH`` makes any benchmark run (``bench_e2*.py`` included) write a
machine-readable summary — per-test outcome and wall-clock duration, plus
whatever richer metrics the benchmark modules recorded through
:func:`_common.record_metric` (e.g. the E27 speedup ratios) — so CI can
upload one ``BENCH_E2x.json`` artifact per experiment and the perf
trajectory stays comparable across PRs.  It works with and without
``--benchmark-disable``; pytest-benchmark's own ``--benchmark-json`` stays
available for its calibrated timings.
"""

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

import _common  # noqa: E402  (needs the path entry above)

_REPORTS = []


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store",
        default=None,
        metavar="PATH",
        help="write machine-readable benchmark results (outcomes, durations, "
        "recorded metrics) to PATH",
    )


def pytest_runtest_logreport(report):
    if report.when == "call":
        _REPORTS.append(
            {
                "test": report.nodeid,
                "outcome": report.outcome,
                "duration_s": round(report.duration, 6),
            }
        )


def pytest_sessionfinish(session, exitstatus):
    path = session.config.getoption("--json")
    if not path:
        return
    payload = {
        "schema": 1,
        "created_unix": int(time.time()),
        "exitstatus": int(exitstatus),
        "python": sys.version.split()[0],
        "results": _REPORTS,
        "metrics": _common.METRICS,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
