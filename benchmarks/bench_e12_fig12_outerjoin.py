"""E12 — Fig. 12 / eq. (18): outer joins via join annotations.

Claims reproduced: (i) the literal-leaf device ``inner(11, s)`` makes a
preserved-side constant part of the join condition (rows with h ≠ 11
survive null-padded); (ii) the SQL frontend applies the device
automatically when translating Fig. 12a; (iii) without the device the
constant degrades to a filter — a *different* query.
"""

import pytest

from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL, generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.outer_join_instance()


def test_eq18_on_paper_instance(benchmark, db):
    query = parse(paper_examples.ARC["eq18"])
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    produced = rows(result)
    assert (2, NULL) in produced  # h = 12 fails ON but is preserved
    assert (1, "x") in produced and (3, "z") in produced
    assert (4, NULL) in produced  # h = 11 but no matching year
    show("eq. (18) / Fig. 12", result.to_table())


def test_sql_frontend_applies_literal_device(benchmark, db):
    sql_query = benchmark(to_arc, paper_examples.SQL["fig12a"], database=db)
    arc_query = parse(paper_examples.ARC["eq18"])
    a = evaluate(sql_query, db, SQL_CONVENTIONS)
    b = evaluate(arc_query, db, SQL_CONVENTIONS)
    assert a == b


def test_device_vs_filter_semantics(benchmark, db):
    with_device = parse(paper_examples.ARC["eq18"])
    without_device = parse(
        "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, s)"
        "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
    )

    def both():
        return (
            evaluate(with_device, db, SQL_CONVENTIONS),
            evaluate(without_device, db, SQL_CONVENTIONS),
        )

    on_semantics, filter_semantics = benchmark(both)
    assert len(on_semantics) > len(filter_semantics)  # row 2 only survives with ON
    assert not any(row["m"] == 2 for row in filter_semantics)
    assert any(row["m"] == 2 for row in on_semantics)


def test_full_outer_join(benchmark):
    db = Database()
    db.create("L", ("a",), [(1,), (2,)])
    db.create("R", ("a",), [(2,), (3,)])
    query = parse(
        "{Q(l, r) | ∃x ∈ L, y ∈ R, full(x, y)[Q.l = x.a ∧ Q.r = y.a ∧ x.a = y.a]}"
    )
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    assert rows(result) == [(NULL, 3), (1, NULL), (2, 2)]


def test_outer_join_scaling(benchmark):
    db = Database()
    db.add(generators.binary_relation("R", 300, domain=40, seed=31, attrs=("a", "b")))
    db.add(generators.binary_relation("S", 300, domain=40, seed=32, attrs=("b", "c")))
    query = parse(
        "{Q(a, c) | ∃r ∈ R, s ∈ S, left(r, s)[Q.a = r.a ∧ Q.c = s.c ∧ r.b = s.b]}"
    )
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    left_keys = {row["a"] for row in db["R"]}
    assert {row["a"] for row in result} == left_keys
