"""E08 — Section 2.6 / eq. (15): conventions, not languages.

Claim reproduced: on R = {(1, 2)}, S = ∅, the *same relational pattern*
returns (1, NULL) under SQL's conventions and (1, 0) under Soufflé's —
flipping the empty-aggregate convention switch changes the observable
result without touching the query.
"""

import pytest

from repro.analysis import same_pattern
from repro.core.conventions import (
    Conventions,
    EmptyAggregate,
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import NULL
from repro.engine import evaluate
from repro.frontends import datalog
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.conventions_instance()


def test_convention_switch_flips_result(benchmark, db):
    query = parse(paper_examples.ARC["eq15"])

    def both():
        return (
            evaluate(query, db, SET_CONVENTIONS),
            evaluate(query, db, SOUFFLE_CONVENTIONS),
        )

    sql_style, souffle_style = benchmark(both)
    assert rows(sql_style) == [(1, NULL)]
    assert rows(souffle_style) == [(1, 0)]
    show(
        "Section 2.6: one pattern, two conventions",
        f"SQL conventions     -> {rows(sql_style)}",
        f"Soufflé conventions -> {rows(souffle_style)}",
    )


def test_pattern_is_convention_independent(benchmark, db):
    """The relational pattern (fingerprint) does not change with the
    convention — only the evaluator's behaviour does."""
    query = parse(paper_examples.ARC["eq15"])
    fp = benchmark(
        __import__("repro.analysis", fromlist=["fingerprint"]).fingerprint, query
    )
    assert fp == __import__("repro.analysis", fromlist=["fingerprint"]).fingerprint(query)


def test_souffle_rule_and_sql_text_same_pattern(benchmark, db):
    from_souffle = datalog.to_arc(paper_examples.DATALOG["eq15"], database=db)
    arc_form = parse(paper_examples.ARC["eq15"])
    equal = benchmark(same_pattern, from_souffle, arc_form, anonymize_relations=True)
    assert equal
    # Each system's native conventions give each system's native answer.
    assert rows(evaluate(from_souffle, db, SOUFFLE_CONVENTIONS)) == [(1, 0)]
    assert rows(evaluate(from_souffle, db, SET_CONVENTIONS)) == [(1, NULL)]


def test_only_empty_aggregate_switch_matters_here(benchmark, db):
    query = parse(paper_examples.ARC["eq15"])
    zero_only = Conventions(empty_aggregate=EmptyAggregate.ZERO)
    result = benchmark(evaluate, query, db, zero_only)
    assert rows(result) == [(1, 0)]
    assert rows(evaluate(query, db, SQL_CONVENTIONS)) == [(1, NULL)]
