"""E21 — the performance envelope of the reference implementation.

A vision paper has no performance tables; a reference implementation still
needs a documented envelope.  These benchmarks sweep the dimensions that
matter for the paper's use cases (interactive translation, validation, and
similarity checking): relation size, join width, nesting depth, query
size, and fixpoint graph size.
"""

import pytest

from repro.analysis import fingerprint
from repro.backends.comprehension import render
from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.workloads import sweeps


@pytest.mark.parametrize("n_rows", [100, 300, 900])
def test_grouped_aggregate_size_sweep(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert len(result) <= n_rows


@pytest.mark.parametrize("n_rows", [30, 60, 120])
def test_correlated_lateral_size_sweep(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=2)
    query = sweeps.lateral_query()
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert not result.is_empty()


@pytest.mark.parametrize("width", [2, 3, 4])
def test_join_width_sweep(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)
    benchmark(evaluate, query, db, SET_CONVENTIONS)


@pytest.mark.parametrize("depth", [2, 3, 4])
def test_negation_depth_sweep(benchmark, depth):
    db = generators.likes_database(6, 4, seed=4)
    db.add(db["Likes"].rename({"drinker": "d", "beer": "b"}, name="L"))
    query = sweeps.nested_negation_query(depth)
    benchmark(evaluate, query, db, SET_CONVENTIONS)


@pytest.mark.parametrize("n_nodes", [50, 120, 250])
def test_fixpoint_graph_sweep(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
    )
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert len(result) >= n_nodes - 1


@pytest.mark.parametrize("depth", [2, 6, 12])
def test_parser_nesting_sweep(benchmark, depth):
    text = sweeps.deep_query_text(depth)
    query = benchmark(parse, text)
    assert render(query)


@pytest.mark.parametrize("n_predicates", [10, 50, 200])
def test_parser_width_sweep(benchmark, n_predicates):
    text = sweeps.wide_query_text(n_predicates)
    query = benchmark(parse, text)
    assert render(query)


@pytest.mark.parametrize("n_predicates", [10, 50, 200])
def test_fingerprint_width_sweep(benchmark, n_predicates):
    query = parse(sweeps.wide_query_text(n_predicates))
    benchmark(fingerprint, query)


def test_sql_translation_throughput(benchmark):
    from repro.frontends.sql import to_arc
    from repro.workloads import paper_examples

    db = sweeps.size_sweep_database(10, seed=6)

    def translate_corpus():
        return [
            to_arc(paper_examples.SQL[key], database=None)
            for key in ("fig4a", "fig5a", "fig5b", "fig11a", "fig13a", "fig21a")
        ]

    results = benchmark(translate_corpus)
    assert len(results) == 6
