"""E01 — Fig. 2 / eq. (1): the three modalities of one TRC query.

Claim reproduced: the same relational core renders as (i) comprehension
text, (ii) a linked ALT identical to Fig. 2a, and (iii) a higraph diagram;
all three parse/derive from one AST, and the query evaluates correctly.
"""

import pytest

from repro.backends.comprehension import render, render_ascii
from repro.core import build_higraph, parse, render_alt, render_higraph_ascii
from repro.core import render_svg, validate
from repro.data import Database
from repro.engine import evaluate
from repro.workloads import paper_examples

from _common import rows, show

EQ1 = paper_examples.ARC["eq1"]

FIG2A = "\n".join(
    [
        "COLLECTION",
        "├─ HEAD: Q(A)",
        "└─ QUANTIFIER ∃",
        "   ├─ BINDING: r ∈ R",
        "   ├─ BINDING: s ∈ S",
        "   └─ AND ∧",
        "      ├─ PREDICATE: Q.A = r.A",
        "      ├─ PREDICATE: r.B = s.B",
        "      └─ PREDICATE: s.C = 0",
    ]
)


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    database.create("S", ("B", "C"), [(10, 0), (20, 5), (30, 0)])
    return database


def test_fig2a_alt_exact(benchmark, db):
    query = parse(EQ1)
    alt = benchmark(render_alt, query)
    assert alt == FIG2A
    show("Fig. 2a — ALT", render_alt(query, include_links=True))


def test_fig2b_higraph(benchmark, db):
    query = parse(EQ1)
    higraph = benchmark(build_higraph, query, database=db)
    ascii_art = render_higraph_ascii(higraph)
    assert "r: R" in ascii_art and "s: S" in ascii_art
    svg = render_svg(higraph)
    assert svg.startswith("<svg")
    show("Fig. 2b — higraph", ascii_art)


def test_modalities_agree_and_evaluate(benchmark, db):
    query = parse(EQ1)
    report = validate(query, database=db)
    assert report.ok

    def pipeline():
        text = render(query)
        reparsed = parse(text)
        return evaluate(reparsed, db)

    result = benchmark(pipeline)
    assert rows(result) == [(1,), (3,)]
    show(
        "eq. (1) in both text spellings",
        render(query),
        render_ascii(query),
        f"result: {rows(result)}",
    )
