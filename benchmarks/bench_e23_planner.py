"""E23 — the hash-indexed execution layer vs the reference strategy.

Sweeps the workloads where the planner changes the complexity class
(equality joins, correlated laterals, grouped aggregates, transitive
closure) with the planner on and off, asserting bag-equal results either
way.  The planner-off configurations use small instances or single
rounds — the reference strategy is the quadratic baseline being measured,
not a regression target.

Representative numbers from the machine this layer was built on
(CPython 3.11, min over rounds):

========================================  ==========  ===========  ========
case                                      planner on  planner off   speedup
========================================  ==========  ===========  ========
join width=3 (E21 sweep, 60 rows/rel)       ~0.8 ms       ~450 ms     ~550x
join width=4 (E21 sweep, 60 rows/rel)       ~1.6 ms    ~25,000 ms  ~15,000x
grouped aggregate n=900 (E21 sweep)        ~0.05 ms       ~4.7 ms     ~100x
transitive closure, 250 nodes               ~15 ms      ~1,140 ms      ~77x
correlated lateral, 120 rows                ~26 ms         ~40 ms     ~1.5x
========================================  ==========  ===========  ========
"""

import gc
import os
import time

import pytest

from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.workloads import sweeps

import _common

ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


def _run_off_once(benchmark, fn):
    """Time a planner-off baseline without autocalibration blowing up."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# -- equality joins ------------------------------------------------------------


@pytest.mark.parametrize("width", [2, 3, 4])
def test_join_chain_planner_on(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert result == evaluate(query, db, SET_CONVENTIONS, planner=False)


@pytest.mark.parametrize("width", [2, 3])
def test_join_chain_planner_off(benchmark, width):
    db = generators.chain_database(width, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(width)
    _run_off_once(
        benchmark, lambda: evaluate(query, db, SET_CONVENTIONS, planner=False)
    )


# -- grouped aggregates --------------------------------------------------------


@pytest.mark.parametrize("n_rows", [100, 300, 900])
def test_grouped_aggregate_planner_on(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert result == evaluate(query, db, SET_CONVENTIONS, planner=False)


@pytest.mark.parametrize("n_rows", [100, 300, 900])
def test_grouped_aggregate_planner_off(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=1)
    query = sweeps.grouped_aggregate_query()
    _run_off_once(
        benchmark, lambda: evaluate(query, db, SET_CONVENTIONS, planner=False)
    )


# -- correlated laterals -------------------------------------------------------


@pytest.mark.parametrize("n_rows", [30, 120])
def test_correlated_lateral_planner_on(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=2)
    query = sweeps.lateral_query()
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert result == evaluate(query, db, SET_CONVENTIONS, planner=False)


@pytest.mark.parametrize("n_rows", [30, 120])
def test_correlated_lateral_planner_off(benchmark, n_rows):
    db = sweeps.size_sweep_database(n_rows, seed=2)
    query = sweeps.lateral_query()
    _run_off_once(
        benchmark, lambda: evaluate(query, db, SET_CONVENTIONS, planner=False)
    )


# -- transitive closure (incremental semi-naive + indexes) ---------------------


@pytest.mark.parametrize("n_nodes", [50, 250])
def test_transitive_closure_planner_on(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(ANCESTOR)
    result = benchmark(evaluate, query, db, SET_CONVENTIONS)
    assert len(result) >= n_nodes - 1


@pytest.mark.parametrize("n_nodes", [50, 250])
def test_transitive_closure_planner_off(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=5, extra_edges=n_nodes // 4)
    query = parse(ANCESTOR)
    result = _run_off_once(
        benchmark, lambda: evaluate(query, db, SET_CONVENTIONS, planner=False)
    )
    assert len(result) >= n_nodes - 1


# -- deadline instrumentation overhead -----------------------------------------


def test_deadline_checks_cost_under_5_percent_on_join_width_4():
    """Acceptance claim (CI perf gate): arming a deadline + row budget costs
    < 5% on the E23 width-4 join chain.

    The stride counters in the planner's row loops are the only per-row
    cost an armed run adds (the clock is read once per 1024 rows, the row
    budget flushes once per 1024 emissions), so this ratio bounds the price
    of running every query under a timeout, as ``repro serve`` does.

    Measurement: interleaved blocks of warm prepared runs, best-of per
    block, and the **minimum** block ratio is asserted.  Scheduler and
    allocator jitter only ever inflates a block's ratio, so the minimum is
    the least-biased estimator of the true overhead — a real regression
    past 5% inflates every block and still fails the gate.  Skipped on
    shared CI runners unless ``RUN_TIMING_ASSERTIONS=1`` (the dedicated
    perf-gate job sets it).
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")

    from repro.api import EvalOptions, Session

    db = generators.chain_database(4, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(4)
    unarmed = Session(db, SET_CONVENTIONS, options=EvalOptions()).prepare(query)
    armed = Session(
        db,
        SET_CONVENTIONS,
        options=EvalOptions(timeout_ms=3_600_000, max_rows=1_000_000_000),
    ).prepare(query)
    assert unarmed.run() == armed.run()  # warm both; deadline changes nothing

    def block_min(prepared, rounds=9):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            prepared.run()
            best = min(best, time.perf_counter() - start)
        return best

    gc.disable()
    try:
        ratios = [block_min(armed) / block_min(unarmed) for _ in range(9)]
    finally:
        gc.enable()

    best_ratio = min(ratios)
    _common.record_metric(
        "e23_deadline_overhead",
        best_ratio=round(best_ratio, 4),
        block_ratios=[round(r, 3) for r in ratios],
    )
    assert best_ratio < 1.05, (
        f"armed deadline costs {(best_ratio - 1) * 100:.1f}% on the width-4 "
        f"join chain (block ratios: {[f'{r:.3f}' for r in ratios]})"
    )


def test_tracer_costs_under_5_percent_on_join_width_4():
    """Acceptance claim (CI perf gate): a metrics-mode tracer — the exact
    configuration ``repro serve`` arms behind ``GET /metrics`` — costs < 5%
    on E23 warm prepared runs.

    The tracer sits at coarse phase boundaries only (a handful of spans per
    query, never per row; ``tests/obs/test_overhead.py`` pins that shape
    with counters), so the armed cost is a few clock reads and histogram
    updates per query.  Same protocol as the deadline gate above:
    interleaved best-of blocks, minimum ratio asserted, skipped on shared
    CI runners unless ``RUN_TIMING_ASSERTIONS=1``.
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")

    from repro.api import EvalOptions, Session
    from repro.obs import MetricsRegistry, Tracer

    db = generators.chain_database(4, 60, domain=30, seed=3)
    query = sweeps.join_chain_query(4)
    untraced = Session(db, SET_CONVENTIONS, options=EvalOptions()).prepare(query)
    traced_session = Session(db, SET_CONVENTIONS, options=EvalOptions())
    traced_session.tracer = Tracer(metrics=MetricsRegistry(), keep_spans=False)
    traced = traced_session.prepare(query)
    assert untraced.run() == traced.run()  # warm both; tracing changes nothing

    def block_min(prepared, rounds=9):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            prepared.run()
            best = min(best, time.perf_counter() - start)
        return best

    gc.disable()
    try:
        ratios = [block_min(traced) / block_min(untraced) for _ in range(9)]
    finally:
        gc.enable()

    best_ratio = min(ratios)
    _common.record_metric(
        "e23_tracer_overhead",
        best_ratio=round(best_ratio, 4),
        block_ratios=[round(r, 3) for r in ratios],
    )
    assert best_ratio < 1.05, (
        f"armed tracer costs {(best_ratio - 1) * 100:.1f}% on the width-4 "
        f"join chain (block ratios: {[f'{r:.3f}' for r in ratios]})"
    )
