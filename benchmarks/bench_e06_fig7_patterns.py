"""E06 — Figs. 7/8 / eqs. (9)-(12): one query, three relational patterns.

Claim reproduced: the Hella et al. formalism (eq. 10) and Rel (eq. 12)
compute the same answer as SQL/ARC (eq. 8) but with *modified relational
patterns* — the base relations are referenced a different number of times
and the aggregation scopes differ; fingerprints distinguish all three while
execution agrees.
"""

import pytest

from repro.analysis import fingerprint, pattern_summary, similarity
from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.engine import evaluate
from repro.frontends import rel
from repro.workloads import instances, paper_examples

from _common import show


@pytest.fixture
def db():
    return instances.payroll_instance()


def shapes():
    return {
        "eq8 (SQL/ARC)": parse(paper_examples.ARC["eq8"]),
        "eq10 (Hella et al.)": parse(paper_examples.ARC["eq10"]),
        "eq12 (Rel)": parse(paper_examples.ARC["eq12"]),
    }


def values(relation):
    return {tuple(row[a] for a in relation.schema) for row in relation.iter_distinct()}


def test_results_agree_patterns_differ(benchmark, db):
    queries = shapes()
    results = {
        name: benchmark.pedantic(
            evaluate, args=(q, db, SET_CONVENTIONS), iterations=1, rounds=1
        )
        if name == "eq8 (SQL/ARC)"
        else evaluate(q, db, SET_CONVENTIONS)
        for name, q in queries.items()
    }
    reference = values(next(iter(results.values())))
    for name, result in results.items():
        assert values(result) == reference, name
    prints = {name: fingerprint(q, anonymize_relations=True) for name, q in queries.items()}
    assert len(set(prints.values())) == 3
    show("fingerprints (same answer, three patterns)", *(f"{k}: {v}" for k, v in prints.items()))


def test_base_relation_reference_counts(benchmark):
    """Hella/Klug reference R and S three times, Rel twice, SQL once."""
    queries = shapes()
    summaries = {name: benchmark.pedantic(
        pattern_summary, args=(q,), iterations=1, rounds=1
    ) if name == "eq8 (SQL/ARC)" else pattern_summary(q) for name, q in queries.items()}
    assert summaries["eq8 (SQL/ARC)"]["bindings"] < summaries["eq12 (Rel)"]["bindings"]
    assert summaries["eq12 (Rel)"]["bindings"] < summaries["eq10 (Hella et al.)"]["bindings"]
    show(
        "binding counts (Fig. 7/8 signature change)",
        *(f"{name}: {s['bindings']} bindings, {s['grouping_scopes']} grouping scopes"
          for name, s in summaries.items()),
    )


def test_rel_frontend_matches_eq12(benchmark, db):
    from_rel = benchmark(rel.to_arc, paper_examples.REL["eq11"], database=db)
    eq12 = parse(paper_examples.ARC["eq12"])
    assert values(evaluate(from_rel, db, SET_CONVENTIONS)) == values(
        evaluate(eq12, db, SET_CONVENTIONS)
    )
    # Same per-aggregate-scope structure.
    assert pattern_summary(from_rel)["nested_collections"] == 2
    assert pattern_summary(eq12)["nested_collections"] == 2


def test_similarity_orders_the_patterns(benchmark, db):
    queries = shapes()
    base = queries["eq8 (SQL/ARC)"]
    sim_rel = benchmark(
        similarity, base, queries["eq12 (Rel)"], anonymize_relations=True
    )
    sim_hella = similarity(base, queries["eq10 (Hella et al.)"], anonymize_relations=True)
    assert 0 < sim_hella < 1 and 0 < sim_rel < 1
    show("intent similarity to eq8", f"eq12: {sim_rel:.3f}", f"eq10: {sim_hella:.3f}")
