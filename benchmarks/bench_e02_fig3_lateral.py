"""E02 — Fig. 3 / eq. (2): nested comprehension ≡ SQL lateral join.

Claim reproduced: the body-nested comprehension (2) and the SQL LATERAL
query of Fig. 3a translate to the same ARC pattern and return identical
results.
"""

import pytest

from repro.analysis import same_pattern
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import rows, show


@pytest.fixture
def db():
    return instances.lateral_instance()


def test_nested_comprehension_evaluates(benchmark, db):
    query = parse(paper_examples.ARC["eq2"])
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    assert rows(result) == [(1, 2), (1, 4), (1, 6), (1, 8), (5, 6), (5, 8)]
    show("eq. (2) result", result.to_table())


def test_sql_lateral_matches(benchmark, db):
    arc_query = parse(paper_examples.ARC["eq2"])
    sql_query = benchmark(to_arc, paper_examples.SQL["fig3a"], database=db)
    a = evaluate(arc_query, db, SQL_CONVENTIONS)
    b = evaluate(sql_query, db, SQL_CONVENTIONS)
    assert a == b
    assert same_pattern(arc_query, sql_query, anonymize_relations=True)
    show(
        "Fig. 3a SQL -> ARC",
        paper_examples.SQL["fig3a"],
        "->",
        __import__("repro.backends.comprehension", fromlist=["render"]).render(sql_query),
    )


def test_correlation_is_lateral(benchmark, db):
    """The nested collection re-evaluates per outer binding: removing the
    correlation changes the result."""
    correlated = parse(paper_examples.ARC["eq2"])
    uncorrelated = parse(
        "{Q(A, B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y[Z.B = y.A ∧ 0 < y.A]}"
        "[Q.A = x.A ∧ Q.B = z.B]}"
    )
    result_corr = benchmark(evaluate, correlated, db, SQL_CONVENTIONS)
    result_flat = evaluate(uncorrelated, db, SQL_CONVENTIONS)
    assert len(result_flat) > len(result_corr)
