"""E03 — Fig. 4 / eq. (3): FIO grouped aggregation.

Claim reproduced: ARC's grouped-aggregate pattern ("from the inside out")
matches SQL GROUP BY exactly — same scope holds the grouping operator, the
head assignments, and multiple parallel aggregates.
"""

import pytest

from repro.analysis import detect_patterns, same_pattern
from repro.core import render_alt
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import generators, Database
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import paper_examples

from _common import rows, show


@pytest.fixture
def db():
    database = Database()
    database.add(generators.binary_relation("R", 400, domain=20, seed=3))
    return database


def test_eq3_evaluates(benchmark, db):
    query = parse(paper_examples.ARC["eq3"])
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    assert len(result) == len({row["A"] for row in db["R"]})
    show("Fig. 4b — ALT", render_alt(query))


def test_sql_group_by_same_pattern(benchmark, db):
    sql_query = benchmark(to_arc, paper_examples.SQL["fig4a"], database=db)
    arc_query = parse(paper_examples.ARC["eq3"])
    assert same_pattern(sql_query, arc_query)
    assert "fio-aggregation" in detect_patterns(sql_query)
    a = evaluate(arc_query, db, SQL_CONVENTIONS)
    b = evaluate(sql_query, db, SQL_CONVENTIONS)
    assert a == b


def test_multiple_aggregates_one_scope(benchmark, db):
    """Unlike Klug-style formalisms, one scope evaluates many aggregates."""
    query = parse(
        "{Q(A, sm, mn, mx, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B) ∧ "
        "Q.mn = min(r.B) ∧ Q.mx = max(r.B) ∧ Q.ct = count(r.B)]}"
    )
    result = benchmark(evaluate, query, db, SQL_CONVENTIONS)
    for row in result:
        assert row["mn"] <= row["mx"]
        assert row["ct"] >= 1
    show("multiple aggregates in one scope", result.to_table(max_rows=5))
