"""E25 — FOI → FIO decorrelation: correlated-lateral sweep.

Three engines over the equality-correlated lateral family
(:func:`repro.workloads.sweeps.correlated_aggregate_query` and the
eq10-shaped join variant :func:`correlated_join_aggregate_query`):

* **decorrelated** — the planner with the FOI → FIO pass (the default):
  the inner scope is materialized once as a grouped hash index and probed
  per outer row;
* **per-row** — the planner with ``decorrelate=False``: the inner scope is
  re-evaluated under every outer environment (the paper's literal FOI
  strategy, kept as the oracle);
* **sqlite warm** — the SQLite backend, which now runs these natively
  (group-by derived tables / correlated scalar subqueries instead of
  LATERAL).

Representative numbers from the machine this pass was built on
(CPython 3.11, SQL conventions, min over rounds):

=============================================  ============  =========  ===========
case                                           decorrelated  per-row    sqlite warm
=============================================  ============  =========  ===========
γ∅ sum,  n=200 (single-relation inner)           ~1.3 ms      ~4.0 ms     ~2.8 ms
γ∅ sum,  n=800 (single-relation inner)           ~5.9 ms     ~16.8 ms    ~34.0 ms
γ-keys sum, n=800 (single-relation inner)        ~8.0 ms     ~24.7 ms     ~5.5 ms
join inner (eq10 shape), n=200                   ~1.1 ms     ~48.6 ms     ~5.8 ms
join inner (eq10 shape), n=800                   ~4.2 ms    ~204.2 ms    ~44.1 ms
=============================================  ============  =========  ===========

The single-relation inner is the per-row strategy's best case (its
re-evaluation is itself an O(bucket) index probe after PR 1), and
decorrelation still wins ~3×.  The join-shaped inner is the honest FOI
cost model — the inner join re-runs per outer row — and decorrelation wins
~40-50×, which is what closes the acceptance claim (≥ 5×).  SQLite executes
the γ∅ shapes as correlated scalar subqueries (no indexes on the loaded
catalog, hence the n=800 cost) and the γ-keys shapes as group-by joins.
"""

import os
import time

import pytest

from repro.core.conventions import SQL_CONVENTIONS
from repro.engine import evaluate
from repro.workloads import sweeps


def _decorrelated(query, db):
    return evaluate(query, db, SQL_CONVENTIONS)


def _per_row(query, db):
    return evaluate(query, db, SQL_CONVENTIONS, decorrelate=False)


def _sqlite(query, db):
    return evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")


def _single_db(n):
    return sweeps.correlated_sweep_database(
        n, n, domain=max(4, n // 4), seed=2, miss_rate=0.1
    )


# -- γ∅ single-relation inner (the per-row strategy's best case) ---------------


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_empty_decorrelated(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum")
    result = benchmark(_decorrelated, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_empty_per_row(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum")
    benchmark(_per_row, query, db)


@pytest.mark.parametrize("n_rows", [200, 800])
def test_gamma_empty_sqlite_warm(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum")
    _sqlite(query, db)  # prime the catalog cache
    result = benchmark(_sqlite, query, db)
    assert result == _per_row(query, db)


# -- γ-keys inner ---------------------------------------------------------------


@pytest.mark.parametrize("n_rows", [800])
def test_grouped_keys_decorrelated(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum", grouped=True)
    result = benchmark(_decorrelated, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [800])
def test_grouped_keys_per_row(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum", grouped=True)
    benchmark(_per_row, query, db)


@pytest.mark.parametrize("n_rows", [800])
def test_grouped_keys_sqlite_warm(benchmark, n_rows):
    db = _single_db(n_rows)
    query = sweeps.correlated_aggregate_query(agg="sum", grouped=True)
    _sqlite(query, db)
    result = benchmark(_sqlite, query, db)
    assert result == _per_row(query, db)


# -- eq10-shaped join inner (the headline sweep) --------------------------------


@pytest.mark.parametrize("n_rows", [200, 800])
def test_join_inner_decorrelated(benchmark, n_rows):
    db = sweeps.correlated_join_database(n_rows, seed=1)
    query = sweeps.correlated_join_aggregate_query()
    result = benchmark(_decorrelated, query, db)
    assert result == _per_row(query, db)


@pytest.mark.parametrize("n_rows", [200])
def test_join_inner_per_row(benchmark, n_rows):
    db = sweeps.correlated_join_database(n_rows, seed=1)
    query = sweeps.correlated_join_aggregate_query()
    benchmark(_per_row, query, db)


@pytest.mark.parametrize("n_rows", [200, 800])
def test_join_inner_sqlite_warm(benchmark, n_rows):
    db = sweeps.correlated_join_database(n_rows, seed=1)
    query = sweeps.correlated_join_aggregate_query()
    _sqlite(query, db)
    result = benchmark(_sqlite, query, db)
    assert result == _per_row(query, db)


def test_decorrelation_beats_per_row_by_5x_on_the_join_sweep():
    """Acceptance claim: on the E25 eq10-shaped sweep the decorrelated
    planner path is ≥ 5× faster than per-row lateral evaluation.

    A wall-clock ordering with a wide margin (measured ~25-30×); skipped on
    shared CI runners, where scheduling noise makes timing assertions flake
    (the repo's perf-regression tests are counter-based for the same
    reason — see ``tests/engine/test_perf_smoke.py`` for the ==0 reeval
    assertions that guard the same property structurally).
    """
    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")
    db = sweeps.correlated_join_database(800, seed=1)
    query = sweeps.correlated_join_aggregate_query()
    assert _decorrelated(query, db) == _per_row(query, db)

    def best_of(fn, rounds=5):
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(query, db)
            times.append(time.perf_counter() - start)
        return min(times)

    decorrelated_time = best_of(_decorrelated)
    per_row_time = best_of(_per_row, rounds=3)
    assert per_row_time > 5 * decorrelated_time, (
        f"decorrelated {decorrelated_time * 1e3:.2f} ms vs "
        f"per-row {per_row_time * 1e3:.2f} ms"
    )
