"""E07 — Fig. 9 / eqs. (13)/(14): Boolean sentences with aggregate tests.

Claim reproduced: ARC expresses integrity constraints directly as Boolean
sentences whose aggregation predicates are *comparison* predicates; the
SQL EXISTS-emulations (Figs. 9a/9c) compute the same truth value, and
eq. (14) is the logical dual of eq. (13) on every instance.
"""

import pytest

from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, Truth, generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples

from _common import show


def test_eq13_eq14_on_paper_instances(benchmark):
    satisfied = instances.boolean_instance(satisfied=True)
    violated = instances.boolean_instance(satisfied=False)
    eq13 = parse(paper_examples.ARC["eq13"])
    eq14 = parse(paper_examples.ARC["eq14"])
    result = benchmark(evaluate, eq13, satisfied, SET_CONVENTIONS)
    assert result is Truth.TRUE
    assert evaluate(eq13, violated, SET_CONVENTIONS) is Truth.FALSE
    # eq14 states "no r exceeds its count": independent property.
    assert evaluate(eq14, satisfied, SET_CONVENTIONS) is Truth.TRUE
    assert evaluate(eq14, violated, SET_CONVENTIONS) is Truth.FALSE
    show(
        "eqs. (13)/(14) on Fig. 9 instances",
        f"satisfied instance: eq13={evaluate(eq13, satisfied)}, eq14={evaluate(eq14, satisfied)}",
        f"violated instance:  eq13={evaluate(eq13, violated)}, eq14={evaluate(eq14, violated)}",
    )


def test_sql_emulations_agree(benchmark):
    db = instances.boolean_instance(satisfied=True)
    sql13 = benchmark(to_arc, paper_examples.SQL["fig9a"], database=db)
    sql14 = to_arc(paper_examples.SQL["fig9c"], database=db)
    assert evaluate(sql13, db, SET_CONVENTIONS) is Truth.TRUE
    assert evaluate(sql14, db, SET_CONVENTIONS) is Truth.TRUE
    eq13 = parse(paper_examples.ARC["eq13"])
    assert evaluate(sql13, db, SET_CONVENTIONS) == evaluate(eq13, db, SET_CONVENTIONS)


def test_duality_on_random_instances(benchmark):
    """∃r[q <= count] need not equal ¬∃r[q > count] in general (different
    statements) — but ¬∃r[q > count] must equal ∀r[q <= count]."""
    eq14 = parse(paper_examples.ARC["eq14"])

    def run_all():
        outcomes = []
        for seed in range(6):
            db = Database()
            db.add(
                generators.binary_relation(
                    "R", 8, domain=4, seed=seed, attrs=("id", "q")
                ).distinct()
            )
            db.add(
                generators.binary_relation(
                    "S", 10, domain=4, seed=seed + 50, attrs=("id", "d")
                )
            )
            value = evaluate(eq14, db, SET_CONVENTIONS)
            # Direct Python check of the ∀ reading.
            counts = {}
            for row in db["S"].iter_distinct():
                counts[row["id"]] = counts.get(row["id"], 0) + 1
            expected = all(
                row["q"] <= counts.get(row["id"], 0)
                for row in db["R"].iter_distinct()
            )
            outcomes.append(value is (Truth.TRUE if expected else Truth.FALSE))
        return outcomes

    outcomes = benchmark(run_all)
    assert all(outcomes)
