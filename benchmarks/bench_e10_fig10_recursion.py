"""E10 — Fig. 10 / eq. (16): recursion with least-fixed-point semantics.

Claim reproduced: the single-collection disjunctive definition of ancestor
computes the same relation as Datalog's two-rule program and as networkx's
transitive closure; the ALT and higraph modalities render the recursive
structure.
"""

import networkx as nx
import pytest

from repro.core import render_alt
from repro.core.parser import parse
from repro.data import generators
from repro.engine import evaluate
from repro.frontends import datalog
from repro.workloads import paper_examples

from _common import show

ANCESTOR = paper_examples.ARC["eq16"]


@pytest.fixture
def db():
    return generators.parent_edges(60, seed=13, extra_edges=25)


def test_fixpoint_matches_networkx(benchmark, db):
    query = parse(ANCESTOR)
    result = benchmark(evaluate, query, db)
    graph = nx.DiGraph((row["s"], row["t"]) for row in db["P"])
    closure = set(nx.transitive_closure(graph).edges())
    assert {(row["s"], row["t"]) for row in result} == closure
    show(
        "Fig. 10 ancestor fixpoint",
        f"edges: {len(db['P'])}, closure: {len(closure)}",
    )


def test_datalog_rules_equal_arc_disjunction(benchmark, db):
    program = benchmark(
        datalog.to_arc, paper_examples.DATALOG["fig10"], database=db
    )
    from_rules = evaluate(program, db)
    from_arc = evaluate(parse(ANCESTOR), db)
    assert {(r["x"], r["y"]) for r in from_rules} == {
        (r["s"], r["t"]) for r in from_arc
    }


def test_alt_modality_shows_disjunction(benchmark):
    query = parse(ANCESTOR)
    alt = benchmark(render_alt, query)
    assert "OR ∨" in alt
    assert alt.count("QUANTIFIER ∃") == 2
    show("Fig. 10a — recursive ALT", alt)


def test_fixpoint_scaling(benchmark):
    """Larger graphs: the naive fixpoint still converges correctly."""
    db = generators.parent_edges(150, seed=14, extra_edges=60)
    query = parse(ANCESTOR)
    result = benchmark(evaluate, query, db)
    graph = nx.DiGraph((row["s"], row["t"]) for row in db["P"])
    assert len(result) == len(set(nx.transitive_closure(graph).edges()))
