"""E22 — ablation: naive vs semi-naive fixpoint (a DESIGN.md design choice).

The paper gives recursion least-fixed-point semantics (Section 2.9) but
does not prescribe an evaluation strategy.  The reference evaluator
implements both textbook strategies; this ablation shows they agree on
every instance while semi-naive dominates as the closure deepens — the
classic Datalog result, reproduced inside ARC's named perspective.
"""

import pytest

from repro.core import nodes as n
from repro.core.parser import parse
from repro.data import generators
from repro.engine import Evaluator
from repro.engine.fixpoint import materialize_program

ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


def solve(db, *, seminaive):
    program = n.Program({"A": parse(ANCESTOR)}, "A")
    evaluator = Evaluator(db)
    materialize_program(program, evaluator, seminaive=seminaive)
    return evaluator.defined["A"]


@pytest.mark.parametrize("n_nodes", [60, 120])
def test_naive(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=17, extra_edges=n_nodes // 3)
    result = benchmark(solve, db, seminaive=False)
    assert not result.is_empty()


@pytest.mark.parametrize("n_nodes", [60, 120])
def test_seminaive(benchmark, n_nodes):
    db = generators.parent_edges(n_nodes, seed=17, extra_edges=n_nodes // 3)
    result = benchmark(solve, db, seminaive=True)
    assert not result.is_empty()


def test_strategies_agree(benchmark):
    """Correctness ablation: identical fixpoints on randomized graphs."""

    def sweep():
        agreements = 0
        for seed in range(4):
            db = generators.parent_edges(40, seed=seed, extra_edges=15)
            naive = solve(db, seminaive=False)
            seminaive = solve(db, seminaive=True)
            if naive.set_equal(seminaive):
                agreements += 1
        return agreements

    assert benchmark(sweep) == 4


def test_seminaive_faster_on_deep_chain(benchmark):
    """A pure chain maximizes iteration count: the gap is largest here."""
    import time

    db = generators.parent_edges(90, seed=23)  # a forest of chains

    def timed_gap():
        t0 = time.perf_counter()
        solve(db, seminaive=False)
        naive_time = time.perf_counter() - t0
        t0 = time.perf_counter()
        solve(db, seminaive=True)
        seminaive_time = time.perf_counter() - t0
        return naive_time / max(seminaive_time, 1e-9)

    speedup = benchmark.pedantic(timed_gap, iterations=1, rounds=1)
    assert speedup > 1.0  # semi-naive must win on deep closures
    print(f"\nsemi-naive speedup over naive: {speedup:.1f}x")


def test_mutual_recursion_both_strategies(benchmark):
    from repro.data import Database

    db = Database()
    db.create("E", ("s", "t"), [(f"n{i}", f"n{i+1}") for i in range(12)])
    program = parse(
        "Even := {Even(x) | ∃e ∈ E[Even.x = e.s ∧ e.s = 'n0'] ∨ "
        "∃e ∈ E, o ∈ Odd[o.x = e.s ∧ Even.x = e.t]} ;\n"
        "Odd := {Odd(x) | ∃e ∈ E, v ∈ Even[v.x = e.s ∧ Odd.x = e.t]} ; main Odd"
    )

    def both():
        results = []
        for flag in (False, True):
            evaluator = Evaluator(db)
            materialize_program(program, evaluator, seminaive=flag)
            results.append(evaluator.defined["Odd"])
        return results

    naive, seminaive = benchmark(both)
    assert naive.set_equal(seminaive)
    assert {row["x"] for row in naive} == {f"n{i}" for i in range(1, 13, 2)}
