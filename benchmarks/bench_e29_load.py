"""E29 — concurrent serving: RPS and tail latency vs worker count.

Drives a real ``repro serve`` subprocess (its own interpreter, so the
load generator's GIL never shades the server's) with the closed-loop
generator from :mod:`repro.serve.loadgen` over the warm prepared E21
width-4 join-chain workload on the SQLite backend.  SQLite releases the
GIL inside ``step()``, so a pool of worker threads genuinely overlaps
query execution; each load client posts its own whitespace-padded query
variant so coalescing stays out of the scaling signal, and a separate
phase posts one identical payload from every client to measure the
coalescer instead.

The acceptance claim (4 workers ≥ 2.5× the single-worker RPS, p99 ≤ 3×
p50 at saturation) is asserted under ``RUN_TIMING_ASSERTIONS=1`` and
gated in CI.  Parallel speedup is bounded by the cores the runner
actually has, so the scaling floor adapts: 2.5× on ≥ 4 CPUs (the
perf-gate runners), 1.5× on 2–3, and on a single CPU — where any
speedup is physically impossible and the raw-SQLite control run shows
~1.0× too — the gate degrades to "the pool costs nothing"
(≥ 0.8×).  The machine this pass was built on is a 1-CPU container:
~35 rps for both worker counts (p50 ~220 ms — eight closed-loop clients
queueing on one core — scaling 1.03×, i.e. pool dispatch is free); the
coalescing phase (8 identical clients, 2 workers) measured 160 requests
answered by 37 executions + 123 coalesced responses, asserted
structurally (no timing involved), so it holds on any machine.

Knobs for constrained runners: ``E29_ROWS``, ``E29_DOMAIN``,
``E29_REQUESTS`` (per client), ``E29_WARMUP`` (per client).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

import _common
from repro.data import generators
from repro.data.csvio import write_csv
from repro.serve import run_load

WIDTH = 4
ROWS = int(os.environ.get("E29_ROWS", "1500"))
DOMAIN = int(os.environ.get("E29_DOMAIN", "300"))
REQUESTS = int(os.environ.get("E29_REQUESTS", "40"))
WARMUP = int(os.environ.get("E29_WARMUP", "4"))

#: The E21 width-4 join chain (R0 ⋈ R1 ⋈ R2 ⋈ R3) under γ∅, served with
#: SQL conventions so the SQLite backend runs it natively (set semantics
#: would fall back to the pure-Python planner and the GIL would flatten
#: the scaling curve).  The aggregate keeps the joined intermediate large
#: (~200k rows of SQLite-side work at the default knobs) while the
#: response is a single row, so almost no time is spent in GIL-bound
#: JSON encoding.
QUERY = (
    "{Q(ct) | ∃r0 ∈ R0, r1 ∈ R1, r2 ∈ R2, r3 ∈ R3, γ ∅"
    "[r0.B = r1.B ∧ r1.C = r2.C ∧ r2.D = r3.D ∧ Q.ct = count(*)]}"
)


def _payload(variant=0):
    # Trailing whitespace changes the coalesce key and the prepared-LRU
    # key without changing the answer.
    return json.dumps({"query": QUERY + " " * variant}).encode()


@pytest.fixture(scope="module")
def db_flags(tmp_path_factory):
    """Write the chain database as CSVs; ``--db`` flags for the server."""
    directory = tmp_path_factory.mktemp("e29_chain")
    db = generators.chain_database(WIDTH, ROWS, domain=DOMAIN, seed=3)
    flags = []
    for name in sorted(db.names()):
        path = directory / f"{name}.csv"
        write_csv(db[name], str(path))
        flags += ["--db", f"{path}:{name}"]
    return flags


class _Server:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, workers, db_flags, extra_env=None):
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.update(extra_env or {})
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0",
                "--conventions", "sql",
                "--backend", "sqlite",
                "--workers", str(workers),
                "--queue-depth", "64",
                *db_flags,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        deadline = time.monotonic() + 30
        self.url = None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                break
            if line.startswith("serving on "):
                self.url = line.split()[2]
                break
        if self.url is None:
            self.proc.kill()
            raise RuntimeError("server did not announce its URL")

    def stats(self):
        with urllib.request.urlopen(self.url + "/stats", timeout=10) as resp:
            return json.load(resp)

    def stop(self):
        """SIGTERM → drain → clean exit (the shutdown path under test)."""
        self.proc.send_signal(signal.SIGTERM)
        code = self.proc.wait(timeout=30)
        self.proc.stdout.close()
        assert code == 0, f"server exited {code}"


def _measure(workers, db_flags, *, payloads, clients):
    server = _Server(workers, db_flags)
    try:
        # Warm every worker's private catalog connection and prepared LRU
        # before the timed window.
        run_load(
            server.url, payloads, clients=clients, requests_per_client=WARMUP
        )
        summary = run_load(
            server.url, payloads, clients=clients,
            requests_per_client=REQUESTS,
        )
        pool = server.stats()["pool"]
    finally:
        server.stop()
    return summary, pool


def test_throughput_scales_with_workers(db_flags):
    """Acceptance claim (CI perf gate): 4 workers sustain ≥ 2.5× the RPS
    of 1 worker on the warm width-4 chain workload, with p99 ≤ 3× p50 at
    saturation.

    The structural half (every request answered 200, no client errors,
    zero coalesced responses because every client posts its own variant)
    always runs; the wall-clock ratios are asserted only under
    ``RUN_TIMING_ASSERTIONS=1`` — the dedicated perf-gate job sets it, so
    a scaling regression below the 2.5× floor fails the build.  The
    floor follows the runner's core count (see the module docstring):
    threads cannot beat the hardware, so a 1-CPU runner only gates the
    pool's dispatch overhead.
    """
    clients = 8
    payloads = [_payload(i) for i in range(clients)]
    single, single_pool = _measure(
        1, db_flags, payloads=payloads, clients=clients
    )
    pooled, pooled_pool = _measure(
        4, db_flags, payloads=payloads, clients=clients
    )
    scaling = pooled.rps / single.rps if single.rps else 0.0
    cores = os.cpu_count() or 1
    floor = 2.5 if cores >= 4 else (1.5 if cores >= 2 else 0.8)
    _common.record_metric(
        "e29_scaling",
        rows=ROWS,
        domain=DOMAIN,
        clients=clients,
        requests_per_client=REQUESTS,
        cpus=cores,
        scaling_floor=floor,
        workers_1=single.as_dict(),
        workers_4=pooled.as_dict(),
        scaling=round(scaling, 2),
    )
    _common.show(
        "E29 — RPS vs workers (width-4 chain, warm)",
        f"1 worker : {single!r}",
        f"4 workers: {pooled!r}",
        f"scaling  : {scaling:.2f}x (floor {floor}x on {cores} cpu(s))",
    )
    for summary in (single, pooled):
        assert summary.errors == 0, summary.as_dict()
        assert set(summary.statuses) == {200}, summary.statuses
        assert summary.coalesced == 0  # distinct variants never coalesce
    assert single_pool["workers"] == 1
    assert pooled_pool["workers"] == 4
    assert pooled_pool["queries_executed"] == clients * (REQUESTS + WARMUP)

    if os.environ.get("CI") and not os.environ.get("RUN_TIMING_ASSERTIONS"):
        pytest.skip("timing assertion; set RUN_TIMING_ASSERTIONS=1 to run in CI")
    assert scaling >= floor, (
        f"4 workers gave {pooled.rps:.1f} rps vs {single.rps:.1f} rps "
        f"for 1 worker ({scaling:.2f}x < {floor}x on {cores} cpu(s))"
    )
    assert pooled.p99_ms <= 3 * pooled.p50_ms, (
        f"saturated tail p99 {pooled.p99_ms:.1f} ms > "
        f"3x p50 {pooled.p50_ms:.1f} ms"
    )


def test_supervision_respawns_under_load(db_flags):
    """Chaos smoke (CI supervision gate): a worker killed mid-load by the
    ``pool.worker=boom*1`` failpoint is respawned while traffic keeps
    flowing — exactly one request eats the typed 500, every other request
    is answered 200, and the final ``/stats`` shows the respawn.
    Structural — no timing assertions.  Gated behind
    ``E29_SUPERVISION=1`` so the default bench run stays chaos-free."""
    if os.environ.get("E29_SUPERVISION") != "1":
        pytest.skip("supervision smoke; set E29_SUPERVISION=1 to run")
    clients = 4
    payloads = [_payload(i) for i in range(clients)]
    server = _Server(
        2, db_flags, extra_env={"REPRO_FAILPOINTS": "pool.worker=boom*1"}
    )
    try:
        summary = run_load(
            server.url, payloads, clients=clients,
            requests_per_client=max(10, REQUESTS // 2),
        )
        pool = server.stats()["pool"]
    finally:
        server.stop()
    _common.record_metric(
        "e29_supervision",
        requests=summary.requests,
        statuses=dict(sorted(summary.statuses.items())),
        workers_respawned=pool["workers_respawned"],
    )
    _common.show(
        "E29 — supervised respawn under load (pool.worker=boom*1)",
        f"load     : {summary!r}",
        f"respawned: {pool['workers_respawned']} "
        f"(workers still {pool['workers']})",
    )
    assert pool["workers_respawned"] == 1
    assert pool["workers"] == 2  # the pool is back at full strength
    # The one armed failpoint killed one worker under one request; that
    # caller got the typed 500 and everyone else was served normally.
    assert summary.statuses.get(500, 0) <= 1
    assert summary.errors <= 1
    assert summary.statuses.get(200, 0) >= summary.requests - 1


def test_identical_load_coalesces(db_flags):
    """Every client posting the same payload folds into shared flights:
    the coalescer answers a measurable share of responses from one
    execution, and the server executes strictly fewer queries than it
    serves.  Structural — no timing assertions."""
    server = _Server(2, db_flags)
    try:
        summary = run_load(
            server.url, [_payload()], clients=8,
            requests_per_client=max(10, REQUESTS // 2),
        )
        stats = server.stats()["pool"]
    finally:
        server.stop()
    _common.record_metric(
        "e29_coalescing",
        requests=summary.requests,
        coalesced_responses=summary.coalesced,
        coalesced_total=stats["coalesced_total"],
        queries_executed=stats["queries_executed"],
    )
    assert summary.errors == 0, summary.as_dict()
    assert summary.coalesced > 0
    assert stats["coalesced_total"] == summary.coalesced
    assert stats["queries_executed"] + summary.coalesced == summary.requests
    assert stats["queries_executed"] < summary.requests
