"""Tracing cost, counter-shaped: the disabled path does zero per-row work.

Wall-clock overhead is gated in ``benchmarks/bench_e23_planner.py`` (the
armed-tracer < 5 % assertion); these tests pin the *structural* claim that
makes that gate hold on any machine: instrumentation sits at coarse phase
boundaries, so span counts scale with phases — never with rows — and a
run without a tracer touches no tracing code at all (identical engine
counters, no spans started anywhere).
"""

from repro.core.parser import parse
from repro.data import Database
from repro.engine import Evaluator
from repro.obs import Tracer

N = 2000

JOIN = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"


def _join_db(n=N):
    db = Database()
    db.create("R", ("A", "B"), [(i, i) for i in range(n)])
    db.create("S", ("B", "C"), [(i, i % 7) for i in range(n)])
    return db


def test_disabled_tracer_changes_no_engine_counters():
    """tracer=None and an armed tracer do byte-identical engine work."""
    db = _join_db()
    plain = Evaluator(db)
    plain_result = plain.evaluate(parse(JOIN))

    tracer = Tracer()
    traced = Evaluator(db, tracer=tracer)
    traced_result = traced.evaluate(parse(JOIN))

    assert traced_result == plain_result
    assert traced.stats.as_dict() == plain.stats.as_dict()
    assert plain.tracer is None  # the disabled path never builds a tracer


def test_armed_span_count_is_per_phase_not_per_row():
    """Thousands of rows, a handful of spans: no per-row instrumentation."""
    db = _join_db()
    tracer = Tracer()
    evaluator = Evaluator(db, tracer=tracer)
    evaluator.evaluate(parse(JOIN))
    assert evaluator.stats.rows_enumerated >= N
    # execute + scope.execute + plan.compile; nothing row-shaped.
    assert tracer.spans_started <= 8, [s.name for s in tracer.finished]


def test_fixpoint_rounds_are_spanned_and_bounded():
    from repro.data import generators

    db = generators.parent_edges(30, seed=7)
    query = (
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃p ∈ P, a ∈ A[A.s = p.s ∧ p.t = a.s ∧ A.t = a.t]}"
    )
    tracer = Tracer()
    evaluator = Evaluator(db, tracer=tracer)
    evaluator.evaluate(parse(query))
    spans, _ = tracer.take()
    solve = [s for s in spans if s.name == "fixpoint.solve"]
    rounds = [s for s in spans if s.name == "fixpoint.round"]
    assert len(solve) == 1
    assert solve[0].tags["strategy"] == "seminaive"
    assert solve[0].tags["rounds"] == len(rounds) > 1
    # Each round span carries the delta it produced.
    assert all("new_rows" in s.tags for s in rounds)
    assert all(s.parent_id == solve[0].span_id for s in rounds)


def test_decorrelation_index_build_is_spanned():
    from repro.core.conventions import SQL_CONVENTIONS
    from repro.workloads import sweeps

    db = sweeps.theta_sweep_database(60, 60, seed=2)
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    tracer = Tracer()
    evaluator = Evaluator(db, SQL_CONVENTIONS, tracer=tracer)
    evaluator.evaluate(query)
    spans, events = tracer.take()
    builds = [s for s in spans if s.name == "decorr.index.build"]
    assert len(builds) == 1
    assert builds[0].tags["strategy"] == "band"
    assert builds[0].tags["ok"] is True

    # Second evaluation: the cached index fires an event, not a build span.
    cached = Tracer()
    second = Evaluator(db, SQL_CONVENTIONS, tracer=cached)
    second.evaluate(query)
    spans, events = cached.take()
    assert not [s for s in spans if s.name == "decorr.index.build"]
    hits = [e for e in events if e.name == "decorr.index"]
    assert hits and hits[0].tags["cached"] is True
