"""Session-level tracing: Prepared.explain() and the coverage guarantee.

The acceptance bar for the explain surface is *accounting honesty*: on a
warm run of a paper workload, the phases the tracer names must explain the
root span's wall time to within 10 % — no large anonymous gaps.  (Cold
first runs pay one-time import/parse costs outside any phase; explain()
re-runs the prepared query, so a prior warm-up run keeps the claim sharp.)
"""

import io

from repro.api import EvalOptions, Explain, Session
from repro.core.conventions import SQL_CONVENTIONS
from repro.obs import Tracer
from repro.workloads import sweeps


def _warm_session(n=400):
    db = sweeps.theta_sweep_database(n, n, band_domain=n, seed=1)
    return Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="planner"))


def test_explain_returns_spans_and_renders_a_tree():
    session = _warm_session(60)
    prepared = session.prepare(sweeps.theta_aggregate_query(op="<", agg="sum"))
    explain = prepared.explain()
    assert isinstance(explain, Explain)
    assert not explain.result.is_empty()
    names = {span.name for span in explain.spans}
    assert "query" in names
    assert "backend.dispatch" in names
    assert "execute" in names
    buffer = io.StringIO()
    explain.render(file=buffer)
    text = buffer.getvalue()
    assert str(explain) + "\n" == text
    assert "query" in text and "backend.dispatch" in text


def test_explain_restores_the_sessions_own_tracer():
    session = _warm_session(40)
    sentinel = Tracer()
    session.tracer = sentinel
    prepared = session.prepare(sweeps.theta_aggregate_query(op="<", agg="sum"))
    explain = prepared.explain()
    assert session.tracer is sentinel
    assert explain.spans  # the recording tracer captured the run


def test_warm_explain_phases_cover_at_least_90_percent_of_wall():
    """Acceptance: direct children of the root span sum to >= 90 % of it."""
    session = _warm_session()
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    prepared = session.prepare(query)
    prepared.run()  # warm up: plan cache, probe verdict, decorr index
    explain = prepared.explain()

    (root,) = [span for span in explain.spans if span.name == "query"]
    assert root.tags.get("warm") is True
    children = [
        span for span in explain.spans if span.parent_id == root.span_id
    ]
    assert children, [span.name for span in explain.spans]
    covered = sum(span.duration_s for span in children)
    assert covered >= 0.9 * root.duration_s, (
        f"phases cover {covered / root.duration_s:.0%} of "
        f"{root.duration_s * 1e3:.2f} ms: "
        f"{[(s.name, round(s.duration_s * 1e3, 3)) for s in children]}"
    )


def test_prepared_lru_hit_and_miss_are_traced():
    session = _warm_session(30)
    session.tracer = Tracer()
    query = "{Q(A) | ∃r ∈ R[Q.A = r.A]}"  # textual: routes through the LRU
    session.prepare(query)
    session.prepare(query)
    spans, events = session.tracer.take()
    assert [s.name for s in spans] == ["frontend.parse"]
    hits = [e for e in events if e.name == "prepared.lru"]
    assert len(hits) == 1 and hits[0].tags["result"] == "hit"


def test_stats_deltas_ride_the_explain_spans():
    session = _warm_session(50)
    prepared = session.prepare(sweeps.theta_aggregate_query(op="<", agg="sum"))
    explain = prepared.explain()
    (root,) = [span for span in explain.spans if span.name == "query"]
    assert root.stats_delta.get("rows_enumerated", 0) > 0
