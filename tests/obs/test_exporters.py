"""Exporter correctness: Prometheus text, Chrome-trace JSON, explain tree."""

import json
import re

from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    render_prometheus,
    render_span_tree,
    write_chrome_trace,
)
from tests.obs.test_tracer import FakeClock

# One exposition sample: name, optional {labels}, then a number.
_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[0-9.+\-eE]+|\+Inf|NaN)$"
)


def _filled_registry():
    registry = MetricsRegistry()
    registry.counter(
        "arc_prepared_lru_total", "Prepared-cache lookups.", labels=("result",)
    ).inc(3, result="hit")
    histogram = registry.histogram(
        "arc_phase_seconds", "Phase latency.", labels=("phase",),
        buckets=(0.001, 0.01, 0.1),
    )
    for value in (0.0005, 0.005, 0.005, 0.05, 2.0):
        histogram.observe(value, phase="execute")
    return registry


class TestPrometheusText:
    def test_every_line_is_a_comment_or_a_parseable_sample(self):
        text = render_prometheus(_filled_registry())
        assert text.endswith("\n")
        for line in text.splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"

    def test_help_and_type_precede_each_metric(self):
        lines = render_prometheus(_filled_registry()).splitlines()
        assert "# HELP arc_prepared_lru_total Prepared-cache lookups." in lines
        assert "# TYPE arc_prepared_lru_total counter" in lines
        assert "# TYPE arc_phase_seconds histogram" in lines
        # HELP always directly precedes TYPE for the same metric.
        for index, line in enumerate(lines):
            if line.startswith("# TYPE "):
                name = line.split()[2]
                assert lines[index - 1].startswith(f"# HELP {name} ")

    def test_histogram_buckets_are_cumulative_and_capped_by_count(self):
        text = render_prometheus(_filled_registry())
        buckets = []
        for line in text.splitlines():
            match = _SAMPLE.match(line)
            if match and match["name"] == "arc_phase_seconds_bucket":
                buckets.append((match["labels"], int(match["value"])))
        # 0.001 → 1, 0.01 → 3, 0.1 → 4, +Inf → 5 (the 2.0 s observation).
        counts = [count for _, count in buckets]
        assert counts == sorted(counts), "bucket counts must be monotone"
        assert 'le="+Inf"' in buckets[-1][0]
        assert buckets[-1][1] == 5
        assert "arc_phase_seconds_count{phase=\"execute\"} 5" in text
        assert "arc_phase_seconds_sum{phase=\"execute\"}" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("reason",)).inc(
            reason='say "hi"\nback\\slash'
        )
        text = render_prometheus(registry)
        assert r'reason="say \"hi\"\nback\\slash"' in text

    def test_extra_rows_render_as_their_declared_kind(self):
        text = render_prometheus(
            MetricsRegistry(),
            extra=[
                ("arc_uptime_seconds", "gauge", "Uptime.", [({}, 12.5)]),
                (
                    "arc_stats_total", "counter", "Engine counters.",
                    [({"counter": "rows_enumerated"}, 42)],
                ),
            ],
        )
        assert "# TYPE arc_uptime_seconds gauge" in text
        assert "arc_uptime_seconds 12.5" in text
        assert 'arc_stats_total{counter="rows_enumerated"} 42' in text


def _traced_batch():
    """Two queries with nested spans and an event, on a fake clock."""
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("query", backend="planner"):
        clock.advance(0.001)
        with tracer.span("execute"):
            clock.advance(0.004)
            with tracer.span("plan.compile"):
                clock.advance(0.002)
            tracer.event("decorr.index", cached=True)
            clock.advance(0.001)
    with tracer.span("query"):
        clock.advance(0.003)
    return tracer.take()


class TestChromeTrace:
    def test_document_round_trips_through_json(self):
        spans, events = _traced_batch()
        document = chrome_trace(spans, events)
        assert json.loads(json.dumps(document)) == document
        assert document["displayTimeUnit"] == "ms"

    def test_spans_are_strictly_nested_per_query_id(self):
        spans, events = _traced_batch()
        rows = {}
        for entry in chrome_trace(spans, events)["traceEvents"]:
            if entry["ph"] == "X":
                rows.setdefault(entry["tid"], []).append(
                    (entry["ts"], entry["ts"] + entry["dur"])
                )
        assert len(rows) == 2  # one timeline row per query id
        for intervals in rows.values():
            for start_a, end_a in intervals:
                for start_b, end_b in intervals:
                    disjoint = end_a <= start_b or end_b <= start_a
                    nested = (start_a <= start_b and end_b <= end_a) or (
                        start_b <= start_a and end_a <= end_b
                    )
                    assert disjoint or nested

    def test_args_carry_identity_tags_and_thread_names(self):
        spans, events = _traced_batch()
        document = chrome_trace(spans, events)
        phases = {entry["ph"] for entry in document["traceEvents"]}
        assert phases == {"M", "X", "i"}
        roots = [
            e for e in document["traceEvents"]
            if e["ph"] == "X" and e["name"] == "query"
        ]
        assert {r["args"]["query_id"] for r in roots} == {"q0001", "q0002"}
        assert roots[0]["args"]["backend"] == "planner"
        names = {
            e["args"]["name"] for e in document["traceEvents"] if e["ph"] == "M"
        }
        assert names == {"query q0001", "query q0002"}
        (instant,) = [e for e in document["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "decorr.index"
        assert instant["args"]["cached"] is True

    def test_timestamps_are_relative_microseconds(self):
        spans, events = _traced_batch()
        entries = [
            e for e in chrome_trace(spans, events)["traceEvents"]
            if e["ph"] == "X"
        ]
        assert min(e["ts"] for e in entries) == 0.0
        root = [e for e in entries if e["args"]["query_id"] == "q0001"][-1]
        assert root["dur"] == 8000.0  # 8 ms on the fake clock

    def test_write_chrome_trace_serializes_the_same_document(self, tmp_path):
        spans, events = _traced_batch()
        path = tmp_path / "trace.json"
        document = write_chrome_trace(path, spans, events)
        assert json.loads(path.read_text(encoding="utf-8")) == document


class TestSpanTree:
    def test_tree_shows_shares_tags_deltas_and_events(self):
        spans, events = _traced_batch()
        spans[1].stats_delta = {"rows_enumerated": 9}
        text = render_span_tree(spans, events)
        lines = text.splitlines()
        assert lines[0].startswith("query  8.00 ms  query_id=q0001")
        assert "backend=planner" in lines[0]
        assert any("└─" in line or "├─" in line for line in lines)
        assert any("· decorr.index" in line and "cached=True" in line
                   for line in lines)
        assert any("[rows_enumerated=+9]" in line for line in lines)
        # execute covers 7 of the root's 8 ms.
        assert any("execute" in line and "88%" in line for line in lines)

    def test_file_argument_prints_the_same_text(self, capsys):
        import sys

        spans, events = _traced_batch()
        text = render_span_tree(spans, events, file=sys.stdout)
        assert capsys.readouterr().out == text + "\n"
