"""Tracer unit tests: nesting, identity, stats deltas, and the null path."""

import pytest

from repro.engine.planner import ExecutionStats
from repro.obs import NULL_SPAN, MetricsRegistry, Tracer


class FakeClock:
    """Injectable monotonic clock (the deadline-test idiom)."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSpans:
    def test_nesting_assigns_parent_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query") as root:
            with tracer.span("execute") as outer:
                with tracer.span("plan.compile") as inner:
                    pass
        assert root.parent_id is None
        assert outer.parent_id == root.span_id
        assert inner.parent_id == outer.span_id
        assert [s.name for s in tracer.finished] == [
            "plan.compile", "execute", "query",
        ]

    def test_injectable_clock_times_durations(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("query"):
            clock.advance(0.25)
            with tracer.span("execute"):
                clock.advance(0.5)
        execute, query = tracer.finished
        assert execute.duration_s == pytest.approx(0.5)
        assert query.duration_s == pytest.approx(0.75)

    def test_sibling_roots_get_sequential_query_ids(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("query"):
            with tracer.span("execute"):
                pass
        with tracer.span("query"):
            pass
        ids = {s.name: s.query_id for s in tracer.finished}
        assert ids == {"execute": "q0001", "query": "q0002"}
        first_query = [s for s in tracer.finished if s.name == "query"][0]
        assert first_query.query_id == "q0001"

    def test_begin_pins_the_query_id(self):
        tracer = Tracer(clock=FakeClock())
        assert tracer.begin("deadbeef") == "deadbeef"
        with tracer.span("query"):
            pass
        with tracer.span("query"):
            pass
        assert {s.query_id for s in tracer.finished} == {"deadbeef"}
        # Unpinning: begin() with no id returns to sequential ids.
        assert tracer.begin().startswith("q")

    def test_tags_are_chainable_and_exceptions_tag_error(self):
        tracer = Tracer(clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("execute", engine="planner") as span:
                span.tag(rows=3).tag(warm=True)
                raise ValueError("boom")
        (span,) = tracer.finished
        assert span.tags == {
            "engine": "planner", "rows": 3, "warm": True, "error": "ValueError",
        }

    def test_stats_delta_keeps_only_moved_counters(self):
        stats = ExecutionStats()
        tracer = Tracer(clock=FakeClock(), stats=stats)
        with tracer.span("execute"):
            stats.rows_enumerated += 7
        (span,) = tracer.finished
        assert span.stats_delta == {"rows_enumerated": 7}

    def test_max_spans_drops_and_counts(self):
        tracer = Tracer(clock=FakeClock(), max_spans=2)
        for _ in range(4):
            with tracer.span("fixpoint.round"):
                pass
        assert len(tracer.finished) == 2
        assert tracer.spans_dropped == 2
        assert tracer.spans_started == 4

    def test_take_drains_and_leaves_open_spans_on_the_stack(self):
        tracer = Tracer(clock=FakeClock())
        outer = tracer.span("query")
        with tracer.span("execute"):
            pass
        spans, events = tracer.take()
        assert [s.name for s in spans] == ["execute"]
        assert events == []
        outer.__exit__(None, None, None)
        spans, _ = tracer.take()
        assert [s.name for s in spans] == ["query"]


class TestEvents:
    def test_events_attach_to_the_open_span(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("backend.dispatch") as span:
            event = tracer.event("breaker.skip", backend="sqlite")
        assert event.parent_id == span.span_id
        assert event.tags == {"backend": "sqlite"}
        assert tracer.events == [event]

    def test_metrics_only_mode_drops_records_but_feeds_histograms(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, metrics=registry, keep_spans=False)
        with tracer.span("execute"):
            clock.advance(0.002)
        assert tracer.event("prepared.lru", result="hit") is None
        assert tracer.finished == [] and tracer.events == []
        histogram = registry.get("arc_phase_seconds")
        assert histogram.count(phase="execute") == 1
        assert histogram.sum(phase="execute") == pytest.approx(0.002)

    def test_backend_tag_feeds_the_backend_histogram(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracer = Tracer(clock=clock, metrics=registry)
        with tracer.span("backend.dispatch", backend="sqlite"):
            clock.advance(0.01)
        assert registry.get("arc_backend_seconds").count(backend="sqlite") == 1

    def test_count_is_a_noop_without_a_registry(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("arc_prepared_lru_total", result="hit")  # must not raise
        registry = MetricsRegistry()
        tracer.metrics = registry
        tracer.count("arc_prepared_lru_total", result="hit")
        assert registry.get("arc_prepared_lru_total").value(result="hit") == 1


class TestNullSpan:
    def test_null_span_is_a_chainable_noop(self):
        with NULL_SPAN as span:
            assert span.tag(rows=10_000) is NULL_SPAN
        assert not hasattr(NULL_SPAN, "__dict__")  # slots: no state can stick

    def test_gating_idiom_matches_the_instrumentation_sites(self):
        tracer = None
        with NULL_SPAN if tracer is None else tracer.span("execute") as span:
            span.tag(anything="goes")
