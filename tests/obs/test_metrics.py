"""Counter/Histogram/Registry semantics behind /metrics and /stats."""

import pytest

from repro.obs import DEFAULT_BUCKETS, Counter, Histogram, MetricsRegistry


class TestCounter:
    def test_labelled_totals_accumulate(self):
        counter = Counter("arc_prepared_lru_total", labels=("result",))
        counter.inc(result="hit")
        counter.inc(2, result="hit")
        counter.inc(result="miss")
        assert counter.value(result="hit") == 3
        assert counter.value(result="miss") == 1
        assert sorted(counter.samples(), key=str) == [
            ({"result": "hit"}, 3),
            ({"result": "miss"}, 1),
        ]

    def test_counters_cannot_decrease(self):
        counter = Counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_names_are_fixed_at_creation(self):
        counter = Counter("c", labels=("backend",))
        with pytest.raises(ValueError):
            counter.inc(engine="sqlite")
        with pytest.raises(ValueError):
            counter.inc()  # missing the declared label


class TestHistogram:
    def test_observations_land_in_the_right_buckets(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 99.0):
            histogram.observe(value)
        ((labels, cumulative, total_sum, total),) = list(histogram.samples())
        assert labels == {}
        assert cumulative == [1, 3, 4]  # cumulative per finite bound
        assert total == 5  # the +Inf bucket catches 99.0
        assert total_sum == pytest.approx(105.5)

    def test_quantile_interpolates_within_a_bucket(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 1.5):
            histogram.observe(value)
        # p50 rank = 2 falls exactly on the first bucket's upper bound.
        assert histogram.quantile(0.5) == pytest.approx(1.0)
        # p75 rank = 3: halfway through the (1, 2] bucket's two samples.
        assert histogram.quantile(0.75) == pytest.approx(1.5)

    def test_quantile_clamps_to_the_last_finite_bound(self):
        histogram = Histogram("h", buckets=(1.0, 2.0, 4.0))
        histogram.observe(1000.0)
        assert histogram.quantile(0.99) == pytest.approx(4.0)

    def test_quantile_is_none_when_empty(self):
        histogram = Histogram("h", labels=("phase",))
        assert histogram.quantile(0.5, phase="execute") is None

    def test_snapshot_is_json_friendly(self):
        histogram = Histogram("h", buckets=(0.001, 0.01))
        histogram.observe(0.0005)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["sum_s"] == pytest.approx(0.0005)
        assert set(snapshot) == {"count", "sum_s", "p50_ms", "p95_ms", "p99_ms"}

    def test_default_buckets_are_sorted_and_span_the_serving_range(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        assert DEFAULT_BUCKETS[0] <= 0.0005  # warm sub-millisecond phases
        assert DEFAULT_BUCKETS[-1] >= 5.0  # cold catalog loads


class TestRegistry:
    def test_get_or_create_returns_the_same_metric(self):
        registry = MetricsRegistry()
        first = registry.counter("c", "help", labels=("x",))
        assert registry.counter("c", labels=("x",)) is first
        assert registry.get("c") is first
        assert len(registry) == 1

    def test_kind_or_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("c", labels=("x",))
        with pytest.raises(ValueError):
            registry.histogram("c", labels=("x",))
        with pytest.raises(ValueError):
            registry.counter("c", labels=("y",))

    def test_latency_summary_groups_by_label_value(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("arc_phase_seconds", labels=("phase",))
        histogram.observe(0.001, phase="execute")
        histogram.observe(0.002, phase="execute")
        histogram.observe(0.1, phase="plan.compile")
        registry.counter("ignored_total").inc()
        summary = registry.latency_summary()
        assert set(summary) == {"arc_phase_seconds"}
        assert summary["arc_phase_seconds"]["execute"]["count"] == 2
        assert summary["arc_phase_seconds"]["plan.compile"]["count"] == 1
