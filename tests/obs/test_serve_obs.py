"""The serving observability surface: query ids, /metrics, request logs."""

import io
import json
import re
import threading
import urllib.request

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.api.serve import configure_request_logging, make_server
from repro.core.conventions import SQL_CONVENTIONS

QUERY = "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}"


def _make(**serve_kwargs):
    db = repro.Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    session = Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="planner"))
    return make_server(session, **serve_kwargs)


@pytest.fixture
def server():
    srv = _make()
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


@pytest.fixture
def logged_server():
    """A --log-json server whose log lines land in an in-memory buffer."""
    srv = _make(log_json=True)
    buffer = io.StringIO()
    configure_request_logging(stream=buffer)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv, buffer
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)
        configure_request_logging()  # drop the buffer handler


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8"), dict(resp.headers)


def _post(server, body):
    request = urllib.request.Request(
        server.url + "/query",
        json.dumps(body).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, resp.read(), dict(resp.headers)


class TestQueryIds:
    def test_every_post_carries_a_fresh_query_id(self, server):
        _, _, headers1 = _post(server, {"query": QUERY})
        _, _, headers2 = _post(server, {"query": QUERY})
        id1 = headers1["X-Arc-Query-Id"]
        id2 = headers2["X-Arc-Query-Id"]
        assert re.fullmatch(r"[0-9a-f]{16}", id1)
        assert re.fullmatch(r"[0-9a-f]{16}", id2)
        assert id1 != id2

    def test_error_responses_carry_the_query_id_too(self, server):
        request = urllib.request.Request(
            server.url + "/query", b"{not json",
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        assert re.fullmatch(
            r"[0-9a-f]{16}", excinfo.value.headers["X-Arc-Query-Id"]
        )

    def test_response_bodies_stay_byte_identical(self, server):
        """The id rides headers only — repeat POSTs stay cacheable."""
        _, body1, _ = _post(server, {"query": QUERY})
        _, body2, _ = _post(server, {"query": QUERY})
        assert body1 == body2


_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{(?P<labels>[^}]*)\})? "
    r"(?P<value>[0-9.+\-eE]+|\+Inf|NaN)$"
)


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self, server):
        _post(server, {"query": QUERY})
        _post(server, {"query": QUERY})
        status, text, headers = _get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert headers["Cache-Control"] == "no-store"
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert _SAMPLE.match(line), f"unparseable sample line: {line!r}"

    def test_phase_histograms_and_request_counters_export(self, server):
        _post(server, {"query": QUERY})
        _post(server, {"query": QUERY})
        _, text, _ = _get(server, "/metrics")
        assert '# TYPE arc_phase_seconds histogram' in text
        assert 'arc_phase_seconds_bucket{le="+Inf",phase="query"} 2' in text
        assert 'arc_phase_seconds_count{phase="query"} 2' in text
        assert 'arc_backend_seconds_count{backend="planner"} 2' in text
        assert 'arc_prepared_lru_total{result="hit"} 1' in text
        assert 'arc_prepared_lru_total{result="miss"} 1' in text
        assert 'arc_stats_total{counter="rows_enumerated"}' in text
        assert re.search(r"^arc_requests_total \d+$", text, re.MULTILINE)
        assert re.search(r"^arc_uptime_seconds \d", text, re.MULTILINE)

    def test_histogram_buckets_are_monotone(self, server):
        _post(server, {"query": QUERY})
        _, text, _ = _get(server, "/metrics")
        series = {}
        for line in text.splitlines():
            match = _SAMPLE.match(line)
            if match and match["name"].endswith("_bucket"):
                key = (match["name"], re.sub(r'le="[^"]*",?', "", match["labels"]))
                series.setdefault(key, []).append(float(match["value"]))
        assert series
        for counts in series.values():
            assert counts == sorted(counts)


class TestStatsEndpoint:
    def test_stats_carries_uptime_requests_and_latency(self, server):
        _post(server, {"query": QUERY})
        status, text, headers = _get(server, "/stats")
        assert status == 200
        assert headers["Cache-Control"] == "no-store"
        stats = json.loads(text)
        assert stats["requests_total"] >= 1
        assert stats["uptime_s"] >= 0
        assert "query" in stats["latency"]["arc_phase_seconds"]
        phase = stats["latency"]["arc_phase_seconds"]["query"]
        assert phase["count"] >= 1 and phase["p50_ms"] is not None


class TestRequestLogging:
    def test_json_lines_one_per_request_with_status_and_elapsed(
        self, logged_server
    ):
        server, buffer = logged_server
        _, _, headers = _post(server, {"query": QUERY})
        _get(server, "/stats")
        lines = [l for l in buffer.getvalue().splitlines() if l]
        assert len(lines) == 2
        post, get = (json.loads(line) for line in lines)
        assert post["method"] == "POST" and post["path"] == "/query"
        assert post["status"] == 200
        assert post["elapsed_ms"] > 0
        assert post["query_id"] == headers["X-Arc-Query-Id"]
        assert get["method"] == "GET" and get["path"] == "/stats"
        assert get["query_id"] is None  # GETs run no query

    def test_text_mode_logs_one_line_per_request(self):
        srv = _make(log_requests=True)
        buffer = io.StringIO()
        configure_request_logging(stream=buffer)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            _post(srv, {"query": QUERY})
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)
            configure_request_logging()
        (line,) = [l for l in buffer.getvalue().splitlines() if l]
        assert re.fullmatch(
            r"POST /query 200 \d+\.\d{3}ms qid=[0-9a-f]{16}", line
        )

    def test_quiet_default_emits_no_log_lines(self, server):
        buffer = io.StringIO()
        configure_request_logging(stream=buffer)
        try:
            _post(server, {"query": QUERY})
        finally:
            configure_request_logging()
        assert buffer.getvalue() == ""
