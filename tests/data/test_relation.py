"""Unit and property tests for Tuple and Relation (set/bag duality)."""

import pytest
from hypothesis import given, strategies as st

from repro.data import NULL, Relation, Tuple
from repro.errors import SchemaError

values = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.sampled_from(["a", "b", "c"]),
    st.just(NULL),
)
rows2 = st.lists(st.tuples(values, values), max_size=12)


class TestTuple:
    def test_getitem(self):
        t = Tuple({"A": 1, "B": "x"})
        assert t["A"] == 1
        assert t["B"] == "x"

    def test_missing_attribute(self):
        with pytest.raises(SchemaError):
            Tuple({"A": 1})["B"]

    def test_equality_is_name_based(self):
        assert Tuple({"A": 1, "B": 2}) == Tuple({"B": 2, "A": 1})

    def test_hash_consistent(self):
        assert hash(Tuple({"A": 1})) == hash(Tuple({"A": 1}))

    def test_project(self):
        t = Tuple({"A": 1, "B": 2, "C": 3})
        assert t.project(["A", "C"]) == Tuple({"A": 1, "C": 3})

    def test_rename(self):
        t = Tuple({"A": 1}).rename({"A": "Z"})
        assert t["Z"] == 1

    def test_merged(self):
        merged = Tuple({"A": 1}).merged(Tuple({"B": 2}))
        assert merged == Tuple({"A": 1, "B": 2})

    def test_null_values_hashable(self):
        assert Tuple({"A": NULL}) == Tuple({"A": NULL})


class TestRelationConstruction:
    def test_positional_rows(self):
        r = Relation("R", ("A", "B"), [(1, 2), (3, 4)])
        assert len(r) == 2

    def test_dict_rows(self):
        r = Relation("R", ("A",), [{"A": 1}])
        assert Tuple({"A": 1}) in r

    def test_arity_mismatch(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [(1,)])

    def test_missing_dict_attr(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "B"), [{"A": 1}])

    def test_duplicate_schema(self):
        with pytest.raises(SchemaError):
            Relation("R", ("A", "A"))

    def test_negative_multiplicity(self):
        r = Relation("R", ("A",))
        with pytest.raises(ValueError):
            r.add((1,), multiplicity=-1)

    def test_zero_multiplicity_is_noop(self):
        r = Relation("R", ("A",))
        r.add((1,), multiplicity=0)
        assert r.is_empty()


class TestBagSemantics:
    def test_multiplicity(self):
        r = Relation("R", ("A",), [(1,), (1,), (2,)])
        assert r.multiplicity((1,)) == 2
        assert len(r) == 3
        assert r.distinct_count() == 2

    def test_distinct(self):
        r = Relation("R", ("A",), [(1,), (1,)])
        assert len(r.distinct()) == 1

    def test_bag_iteration_counts_duplicates(self):
        r = Relation("R", ("A",), [(1,), (1,)])
        assert sum(1 for _ in r) == 2
        assert sum(1 for _ in r.iter_distinct()) == 1

    def test_bag_equality(self):
        a = Relation("R", ("A",), [(1,), (1,)])
        b = Relation("S", ("A",), [(1,), (1,)])
        c = Relation("T", ("A",), [(1,)])
        assert a == b
        assert a != c
        assert a.set_equal(c)


class TestDerivations:
    def test_rename(self):
        r = Relation("R", ("A",), [(1,)]).rename({"A": "Z"})
        assert r.schema == ("Z",)
        assert Tuple({"Z": 1}) in r

    def test_project_keeps_multiplicity(self):
        r = Relation("R", ("A", "B"), [(1, 1), (1, 2)])
        p = r.project(["A"])
        assert p.multiplicity((1,)) == 2

    def test_select(self):
        r = Relation("R", ("A",), [(1,), (2,), (3,)])
        assert len(r.select(lambda t: t["A"] > 1)) == 2

    def test_union_all(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("S", ("A",), [(1,), (2,)])
        assert len(a.union(b)) == 3
        assert len(a.union(b, all=False)) == 2

    def test_union_schema_mismatch(self):
        a = Relation("R", ("A",), [(1,)])
        b = Relation("S", ("B",), [(1,)])
        with pytest.raises(SchemaError):
            a.union(b)

    @given(rows2)
    def test_distinct_idempotent(self, rows):
        r = Relation("R", ("A", "B"), rows)
        assert r.distinct() == r.distinct().distinct()

    @given(rows2)
    def test_distinct_multiplicities_are_one(self, rows):
        r = Relation("R", ("A", "B"), rows).distinct()
        assert all(mult == 1 for mult in r.counter().values())

    @given(rows2, rows2)
    def test_union_cardinality(self, rows_a, rows_b):
        a = Relation("R", ("A", "B"), rows_a)
        b = Relation("S", ("A", "B"), rows_b)
        assert len(a.union(b)) == len(a) + len(b)

    @given(rows2)
    def test_projection_cardinality_preserved(self, rows):
        r = Relation("R", ("A", "B"), rows)
        assert len(r.project(["A"])) == len(r)


class TestDisplay:
    def test_sorted_rows_deterministic(self):
        r = Relation("R", ("A",), [(3,), (1,), (NULL,), (2,)])
        ordered = [t["A"] for t in r.sorted_rows()]
        assert ordered[0] is NULL
        assert ordered[1:] == [1, 2, 3]

    def test_to_table(self):
        r = Relation("R", ("A", "B"), [(1, NULL)])
        table = r.to_table()
        assert "A" in table and "NULL" in table

    def test_to_table_truncation(self):
        r = Relation("R", ("A",), [(i,) for i in range(60)])
        assert "more rows" in r.to_table(max_rows=10)
