"""Unit and property tests for the value domain and 3VL algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.data.values import (
    FALSE,
    NULL,
    TRUE,
    UNKNOWN,
    Truth,
    arithmetic,
    compare,
    is_null,
    sort_key,
    t_and,
    t_not,
    t_or,
)

truths = st.sampled_from([TRUE, FALSE, UNKNOWN])


class TestNull:
    def test_singleton(self):
        from repro.data.values import _NullType

        assert _NullType() is NULL

    def test_is_null(self):
        assert is_null(NULL)
        assert not is_null(None)
        assert not is_null(0)
        assert not is_null("")

    def test_null_is_falsy(self):
        assert not NULL

    def test_null_equals_only_itself(self):
        assert NULL == NULL
        assert NULL != 0
        assert NULL != ""

    def test_null_hashable(self):
        assert hash(NULL) == hash(NULL)
        assert len({NULL, NULL}) == 1

    def test_repr(self):
        assert repr(NULL) == "NULL"


class TestTruth:
    def test_ordering(self):
        assert FALSE < UNKNOWN < TRUE

    def test_bool_collapse(self):
        assert bool(TRUE)
        assert not bool(UNKNOWN)
        assert not bool(FALSE)

    def test_of(self):
        assert Truth.of(True) is TRUE
        assert Truth.of(False) is FALSE
        assert Truth.of(NULL) is UNKNOWN

    def test_not(self):
        assert t_not(TRUE) is FALSE
        assert t_not(FALSE) is TRUE
        assert t_not(UNKNOWN) is UNKNOWN

    def test_and_or_basics(self):
        assert t_and(TRUE, TRUE) is TRUE
        assert t_and(TRUE, UNKNOWN) is UNKNOWN
        assert t_and(FALSE, UNKNOWN) is FALSE
        assert t_or(FALSE, FALSE) is FALSE
        assert t_or(FALSE, UNKNOWN) is UNKNOWN
        assert t_or(TRUE, UNKNOWN) is TRUE

    @given(truths, truths)
    def test_kleene_and_is_min(self, a, b):
        assert t_and(a, b) is min(a, b)

    @given(truths, truths)
    def test_kleene_or_is_max(self, a, b):
        assert t_or(a, b) is max(a, b)

    @given(truths, truths)
    def test_de_morgan(self, a, b):
        assert t_not(t_and(a, b)) is t_or(t_not(a), t_not(b))
        assert t_not(t_or(a, b)) is t_and(t_not(a), t_not(b))

    @given(truths)
    def test_double_negation(self, a):
        assert t_not(t_not(a)) is a

    @given(truths, truths, truths)
    def test_associativity(self, a, b, c):
        assert t_and(t_and(a, b), c) is t_and(a, t_and(b, c))
        assert t_or(t_or(a, b), c) is t_or(a, t_or(b, c))


class TestCompare:
    def test_basic_comparisons(self):
        assert compare(1, "=", 1) is TRUE
        assert compare(1, "<", 2) is TRUE
        assert compare(2, "<=", 1) is FALSE
        assert compare(1, "<>", 2) is TRUE
        assert compare("a", "<", "b") is TRUE

    def test_null_three_valued(self):
        for op in ("=", "<>", "<", "<=", ">", ">="):
            assert compare(NULL, op, 1) is UNKNOWN
            assert compare(1, op, NULL) is UNKNOWN
            assert compare(NULL, op, NULL) is UNKNOWN

    def test_null_two_valued(self):
        assert compare(NULL, "=", NULL, three_valued=False) is TRUE
        assert compare(NULL, "=", 1, three_valued=False) is FALSE
        assert compare(NULL, "<>", 1, three_valued=False) is TRUE
        assert compare(NULL, "<", 1, three_valued=False) is TRUE  # NULL sorts first

    def test_heterogeneous(self):
        assert compare("a", "=", 1) is FALSE
        assert compare("a", "<>", 1) is TRUE
        assert compare("a", "<", 1) is FALSE

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            compare(1, "~", 2)

    @given(st.integers(), st.integers())
    def test_trichotomy(self, a, b):
        results = [compare(a, "<", b), compare(a, "=", b), compare(b, "<", a)]
        assert results.count(TRUE) == 1


class TestArithmetic:
    def test_operators(self):
        assert arithmetic("+", 2, 3) == 5
        assert arithmetic("-", 2, 3) == -1
        assert arithmetic("*", 2, 3) == 6
        assert arithmetic("/", 6, 3) == 2
        assert arithmetic("%", 7, 3) == 1

    def test_null_propagates(self):
        for op in "+-*/%":
            assert is_null(arithmetic(op, NULL, 1))
            assert is_null(arithmetic(op, 1, NULL))

    def test_division_by_zero_is_null(self):
        assert is_null(arithmetic("/", 1, 0))
        assert is_null(arithmetic("%", 1, 0))

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            arithmetic("^", 1, 2)

    @given(st.integers(min_value=-10**6, max_value=10**6),
           st.integers(min_value=-10**6, max_value=10**6))
    def test_plus_minus_inverse(self, a, b):
        assert arithmetic("-", arithmetic("+", a, b), b) == a


class TestSortKey:
    def test_null_first(self):
        values = ["b", 3, NULL, 1, "a", True]
        ordered = sorted(values, key=sort_key)
        assert is_null(ordered[0])

    def test_total_order_over_mixed(self):
        values = [NULL, "x", 2, False, 1.5]
        sorted(values, key=sort_key)  # must not raise
