"""Tests for the Database catalog, generators, and CSV IO."""

import io

import pytest

from repro.data import Database, Relation, NULL, csvio, generators
from repro.errors import SchemaError


class TestDatabase:
    def test_create_and_get(self):
        db = Database()
        rel = db.create("R", ("A",), [(1,)])
        assert db.get("R") is rel
        assert db["R"] is rel
        assert "R" in db

    def test_unknown_relation(self):
        with pytest.raises(SchemaError):
            Database().get("missing")

    def test_add_requires_relation(self):
        with pytest.raises(SchemaError):
            Database().add("not a relation")

    def test_replace(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("R", ("A",), [(1,), (2,)])
        assert len(db["R"]) == 2

    def test_names_sorted(self):
        db = Database()
        db.create("Z", ("A",))
        db.create("A", ("A",))
        assert db.names() == ["A", "Z"]

    def test_copy_shares_relations(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        clone = db.copy()
        clone.drop("R")
        assert "R" in db and "R" not in clone


class TestGenerators:
    def test_binary_relation_deterministic(self):
        a = generators.binary_relation("R", 50, seed=7)
        b = generators.binary_relation("R", 50, seed=7)
        assert a == b

    def test_binary_relation_nulls(self):
        rel = generators.binary_relation("R", 200, seed=1, null_rate=0.5)
        has_null = any(
            any(row[a] is NULL for a in rel.schema) for row in rel.iter_distinct()
        )
        assert has_null

    def test_chain_database(self):
        db = generators.chain_database(3, 10, seed=2)
        assert db.names() == ["R0", "R1", "R2"]
        assert db["R0"].schema == ("A", "B")
        assert db["R1"].schema == ("B", "C")

    def test_payroll_database(self):
        db = generators.payroll_database(10, 3, seed=3)
        assert len(db["R"]) == 10
        assert len(db["S"]) == 10

    def test_likes_every_drinker_likes_something(self):
        db = generators.likes_database(8, 5, seed=4)
        drinkers = {row["drinker"] for row in db["Likes"]}
        assert len(drinkers) == 8

    def test_parent_edges_acyclic(self):
        db = generators.parent_edges(30, seed=5, extra_edges=10)
        for row in db["P"]:
            assert int(row["s"][1:]) < int(row["t"][1:])

    def test_sparse_matrix(self):
        rel = generators.sparse_matrix("A", 5, 4, density=1.0, seed=6)
        assert len(rel) == 20
        dense = generators.matrix_to_dense(rel, 5, 4)
        assert len(dense) == 5 and len(dense[0]) == 4


class TestCsvIo:
    def test_roundtrip(self):
        rel = Relation("R", ("A", "B"), [(1, "x"), (2, NULL)])
        text = csvio.write_csv(rel)
        back = csvio.read_csv(io.StringIO(text), "R")
        assert back == rel

    def test_type_inference(self):
        text = "A,B,C\n1,1.5,hello\n2,2.5,world\n"
        rel = csvio.read_csv(io.StringIO(text), "R")
        row = rel.sorted_rows()[0]
        assert isinstance(row["A"], int)
        assert isinstance(row["B"], float)
        assert isinstance(row["C"], str)

    def test_empty_cells_become_null(self):
        rel = csvio.read_csv(io.StringIO("A,B\n1,\n"), "R")
        assert rel.sorted_rows()[0]["B"] is NULL

    def test_no_header_error(self):
        with pytest.raises(ValueError):
            csvio.read_csv(io.StringIO(""), "R")

    def test_file_roundtrip(self, tmp_path):
        rel = Relation("R", ("A",), [(1,), (2,)])
        path = tmp_path / "r.csv"
        csvio.write_csv(rel, str(path))
        assert csvio.read_csv(str(path), "R") == rel
