"""Bag-vs-set conventions: multiplicities, nesting, dedup (Section 2.7)."""

import pytest

from repro.core.conventions import Conventions, Semantics, SET_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate

BAG = Conventions(semantics=Semantics.BAG)


@pytest.fixture
def dup_db():
    db = Database()
    db.create("R", ("A", "B"), [(1, 5), (1, 5), (2, 6)])
    db.create("S", ("B",), [(5,), (5,), (6,)])
    return db


class TestMultiplicities:
    def test_projection_keeps_duplicates_under_bag(self, dup_db):
        result = evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), dup_db, BAG)
        assert result.multiplicity((1,)) == 2

    def test_projection_dedupes_under_set(self, dup_db):
        result = evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), dup_db, SET_CONVENTIONS)
        assert result.multiplicity((1,)) == 1

    def test_join_multiplies(self, dup_db):
        result = evaluate(
            parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"), dup_db, BAG
        )
        # (1,5) x2 joins (5,) x2 -> 4; (2,6) joins (6,) -> 1
        assert result.multiplicity((1,)) == 4
        assert result.multiplicity((2,)) == 1

    def test_nested_exists_is_semijoin(self, dup_db):
        nested = evaluate(
            parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}"), dup_db, BAG
        )
        # Once per R occurrence, not per pair.
        assert nested.multiplicity((1,)) == 2

    def test_union_all_adds(self, dup_db):
        result = evaluate(
            parse("{Q(B) | ∃r ∈ R[Q.B = r.B] ∨ ∃s ∈ S[Q.B = s.B]}"), dup_db, BAG
        )
        assert result.multiplicity((5,)) == 4

    def test_aggregate_counts_duplicates(self, dup_db):
        result = evaluate(
            parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}"), dup_db, BAG
        )
        assert result.sorted_rows()[0]["sm"] == 16

    def test_aggregate_over_distinct_under_set(self, dup_db):
        result = evaluate(
            parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}"), dup_db, SET_CONVENTIONS
        )
        assert result.sorted_rows()[0]["sm"] == 11

    def test_group_emits_one_row_per_group(self, dup_db):
        result = evaluate(
            parse("{Q(A, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.ct = count(*)]}"),
            dup_db,
            BAG,
        )
        assert result.multiplicity({"A": 1, "ct": 2}) == 1


class TestSqlConventions:
    def test_sql_is_bag(self, dup_db):
        result = evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), dup_db, SQL_CONVENTIONS)
        assert len(result) == 3

    def test_scalar_lateral_per_outer_tuple(self):
        """Fig. 13: the lateral form evaluates once per outer *tuple*."""
        db = Database()
        db.create("R", ("A",), [(1,), (1,), (2,)])
        db.create("S", ("A", "B"), [(0, 7), (1, 3)])
        lateral = parse(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        result = evaluate(lateral, db, SQL_CONVENTIONS)
        assert result.multiplicity({"A": 1, "sm": 7}) == 2

    def test_left_join_groupby_collapses_duplicates(self):
        """Fig. 13c is NOT equivalent under bag semantics: duplicates in R
        fall into one group (sum doubled, multiplicity collapsed)."""
        db = Database()
        db.create("R", ("A",), [(1,), (1,), (2,)])
        db.create("S", ("A", "B"), [(0, 7), (1, 3)])
        ljgb = parse(
            "{Q(A, sm) | ∃x ∈ {X(A, sm) | ∃r2 ∈ R, s ∈ S, γ r2.A, left(r2, s)"
            "[X.A = r2.A ∧ X.sm = sum(s.B) ∧ s.A < r2.A]}"
            "[Q.A = x.A ∧ Q.sm = x.sm]}"
        )
        result = evaluate(ljgb, db, SQL_CONVENTIONS)
        assert result.multiplicity({"A": 1, "sm": 7}) == 0  # wrong value
        assert result.multiplicity({"A": 1, "sm": 14}) == 1  # collapsed group

    def test_both_agree_without_duplicates(self):
        db = Database()
        db.create("R", ("A",), [(1,), (2,)])
        db.create("S", ("A", "B"), [(0, 7), (1, 3)])
        lateral = parse(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        ljgb = parse(
            "{Q(A, sm) | ∃x ∈ {X(A, sm) | ∃r2 ∈ R, s ∈ S, γ r2.A, left(r2, s)"
            "[X.A = r2.A ∧ X.sm = sum(s.B) ∧ s.A < r2.A]}"
            "[Q.A = x.A ∧ Q.sm = x.sm]}"
        )
        a = evaluate(lateral, db, SQL_CONVENTIONS)
        b = evaluate(ljgb, db, SQL_CONVENTIONS)
        assert a == b
