"""Basic evaluator semantics: selection, projection, joins, nesting, 3VL."""

import pytest

from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL, Truth
from repro.engine import Evaluator, evaluate
from repro.errors import EvaluationError

from ..conftest import rows_as_tuples


class TestSelectionProjection:
    def test_projection(self, rs_db):
        result = evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), rs_db)
        assert rows_as_tuples(result) == [(1,), (2,), (3,)]

    def test_selection_constant(self, rs_db):
        result = evaluate(parse("{Q(B) | ∃s ∈ S[Q.B = s.B ∧ s.C = 0]}"), rs_db)
        assert rows_as_tuples(result) == [(10,), (30,)]

    def test_rename_via_assignment(self, rs_db):
        result = evaluate(parse("{Q(X) | ∃r ∈ R[Q.X = r.A]}"), rs_db)
        assert result.schema == ("X",)

    def test_computed_head(self, rs_db):
        result = evaluate(parse("{Q(twice) | ∃r ∈ R[Q.twice = r.A * 2]}"), rs_db)
        assert rows_as_tuples(result) == [(2,), (4,), (6,)]

    def test_constant_head(self, rs_db):
        result = evaluate(parse("{Q(K) | ∃r ∈ R[Q.K = 7 ∧ r.A = 1]}"), rs_db)
        assert rows_as_tuples(result) == [(7,)]

    def test_empty_result(self, rs_db):
        result = evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.A > 99]}"), rs_db)
        assert result.is_empty()


class TestJoins:
    def test_equijoin(self, rs_db):
        result = evaluate(
            parse("{Q(A, C) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ Q.C = s.C ∧ r.B = s.B]}"),
            rs_db,
        )
        assert rows_as_tuples(result) == [(1, 0), (2, 5), (3, 0)]

    def test_theta_join(self, rs_db):
        result = evaluate(
            parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B < s.B]}"), rs_db
        )
        assert rows_as_tuples(result) == [(1,), (2,)]

    def test_cross_product_cardinality(self, rs_db):
        result = evaluate(
            parse("{Q(A, B) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ Q.B = s.B]}"), rs_db
        )
        assert len(result) == 9

    def test_self_join(self, rs_db):
        result = evaluate(
            parse("{Q(A) | ∃r ∈ R, r2 ∈ R[Q.A = r.A ∧ r.A < r2.A]}"), rs_db
        )
        assert rows_as_tuples(result) == [(1,), (2,)]


class TestNesting:
    def test_lateral_correlation(self):
        db = Database()
        db.create("X", ("A",), [(1,), (5,), (9,)])
        db.create("Y", ("A",), [(2,), (4,), (6,), (8,)])
        query = parse(
            "{Q(A, B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y[Z.B = y.A ∧ x.A < y.A]}"
            "[Q.A = x.A ∧ Q.B = z.B]}"
        )
        result = evaluate(query, db)
        assert rows_as_tuples(result) == [
            (1, 2), (1, 4), (1, 6), (1, 8), (5, 6), (5, 8),
        ]

    def test_empty_lateral_drops_outer(self, rs_db):
        query = parse(
            "{Q(A) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ s.B > 99]}[Q.A = r.A]}"
        )
        assert evaluate(query, rs_db).is_empty()

    def test_semijoin(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[r.B = s.B ∧ s.C = 0]]}")
        assert rows_as_tuples(evaluate(query, rs_db)) == [(1,), (3,)]

    def test_antijoin(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[r.B = s.B ∧ s.C = 0])]}")
        assert rows_as_tuples(evaluate(query, rs_db)) == [(2,)]


class TestDisjunction:
    def test_union_of_rules(self, rs_db):
        query = parse("{Q(v) | ∃r ∈ R[Q.v = r.A] ∨ ∃s ∈ S[Q.v = s.C]}")
        assert rows_as_tuples(evaluate(query, rs_db)) == [(0,), (1,), (2,), (3,), (5,)]

    def test_row_level_or(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ (r.A = 1 ∨ r.A = 3)]}")
        assert rows_as_tuples(evaluate(query, rs_db)) == [(1,), (3,)]


class TestSentences:
    def test_true_sentence(self, rs_db):
        assert evaluate(parse("∃r ∈ R[r.A = 1]"), rs_db) is Truth.TRUE

    def test_false_sentence(self, rs_db):
        assert evaluate(parse("∃r ∈ R[r.A = 99]"), rs_db) is Truth.FALSE

    def test_negated_sentence(self, rs_db):
        assert evaluate(parse("¬∃r ∈ R[r.A = 99]"), rs_db) is Truth.TRUE

    def test_unknown_sentence(self):
        db = Database()
        db.create("R", ("A",), [(NULL,)])
        assert evaluate(parse("∃r ∈ R[r.A = 1]"), db) is Truth.UNKNOWN


class TestErrors:
    def test_unknown_relation(self):
        with pytest.raises(EvaluationError):
            evaluate(parse("{Q(A) | ∃r ∈ Nope[Q.A = r.A]}"), Database())

    def test_unassigned_head(self, rs_db):
        with pytest.raises(EvaluationError):
            evaluate(parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A]}"), rs_db)

    def test_aggregate_without_grouping(self, rs_db):
        with pytest.raises(EvaluationError):
            evaluate(parse("{Q(sm) | ∃r ∈ R[Q.sm = sum(r.B)]}"), rs_db)

    def test_evaluator_reuse(self, rs_db):
        evaluator = Evaluator(rs_db, SET_CONVENTIONS)
        a = evaluator.evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        b = evaluator.evaluate(parse("{Q(B) | ∃s ∈ S[Q.B = s.B]}"))
        assert len(a) == 3 and len(b) == 3
