"""Decorrelation safety: the probe's accept/refuse matrix, pinned.

The rewrite accepts pure-equality correlations (hash-index probes, with an
UNKNOWN-aware tri-bucket build when keys may be NULL under 3VL) and single
θ correlations (`<`/`<=`/`>`/`>=` band indexes: prefix-aggregate arrays
for γ∅ scopes, sorted slices for non-grouped ones); every other shape must
fall back to the per-row strategy.  These tests drive the probe
(`decorrelate.probe_binding`) directly — asserting the decision *and* its
reason — check that refused shapes still evaluate correctly
(differentially) via the fallback, and exercise the band index's data
edges (NaN/NULL keys under both conventions, empty inners, mutation,
mixed-kind build fallbacks).
"""

import pytest

from repro.core import builder as b
from repro.core import nodes as n
from repro.core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import Database, NULL
from repro.engine import Evaluator, decorrelate, evaluate
from repro.workloads import sweeps


def _db(*, null_key=False):
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    s_rows = [(1, 5), (1, 7), (2, 11)]
    if null_key:
        s_rows.append((NULL, 13))
    db.create("S", ("A", "B"), s_rows)
    return db


def _lateral_binding(query_text):
    """The first nested-collection binding of the parsed query's body."""
    node = parse(query_text)
    for binding in node.body.bindings:
        if isinstance(binding.source, n.Collection):
            return node, binding
    raise AssertionError("query has no lateral binding")


def probe(query_text, db=None, conventions=SQL_CONVENTIONS, **kwargs):
    node, binding = _lateral_binding(query_text)
    evaluator = Evaluator(db if db is not None else _db(), conventions, **kwargs)
    spec, reason = decorrelate.probe_binding(evaluator, binding)
    if spec is None:
        # Refused shapes must still evaluate correctly via the per-row path.
        database = evaluator.database
        assert evaluate(node, database, conventions) == evaluate(
            node, database, conventions, planner=False
        )
    return spec, reason


EQ_LATERAL = (
    "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
    "[s.A = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
)


class TestProbeAccepts:
    def test_equality_gamma_empty(self):
        spec, reason = probe(EQ_LATERAL)
        assert reason is None
        assert spec.empty_group
        assert spec.key_attrs == ("_ck0",)
        assert spec.rewritten.head.attrs == ("sm", "_ck0")

    def test_equality_grouped_keys(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.B"
            "[s.A = r.A ∧ X.sm = sum(s.B) ∧ X.g = s.B]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert not spec.empty_group and spec.grouped

    def test_uncorrelated_lateral_materializes_once(self):
        # No correlation keys: the inner scope is still materialized once
        # instead of per outer row.
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert spec.key_attrs == ()

    def test_null_keys_accepted_under_two_valued_logic(self):
        # 2VL treats NULL as an ordinary value; the hash probe agrees.
        spec, reason = probe(
            EQ_LATERAL, _db(null_key=True), SOUFFLE_CONVENTIONS
        )
        assert reason is None

    def test_null_keys_accepted_under_3vl_via_tribucket(self):
        # The UNKNOWN-aware (tri-bucket) index accepts NULL-able keys under
        # three-valued logic: NULL-keyed inner rows are TRUE for no probe
        # and land in the UNKNOWN bucket instead of refusing the rewrite.
        spec, reason = probe(EQ_LATERAL, _db(null_key=True), SQL_CONVENTIONS)
        assert reason is None
        spec, reason = probe(EQ_LATERAL, _db(null_key=True), SET_CONVENTIONS)
        assert reason is None

    def test_unprovable_key_expression_accepted_under_3vl(self):
        # s.A + 0 may evaluate to NULL; tri-bucket indexing handles that at
        # build time, so provability is no longer required.
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A + 0 = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None

    def test_theta_gamma_empty_becomes_a_band_spec(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert spec.strategy == "band"
        assert spec.band_op == "<"
        assert spec.empty_group
        assert spec.band_aggs == (("sm", "sum", spec.band_aggs[0][2]),)

    def test_theta_orientation_normalizes_the_operator(self):
        # r.A > s.A  ≡  s.A < r.A: the outer-on-the-left form flips.
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[r.A > s.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert spec.strategy == "band" and spec.band_op == "<"

    def test_theta_non_grouped_becomes_a_band_spec(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
            "s.A >= r.A]}[Q.A = r.A ∧ Q.B = z.B]}"
        )
        assert reason is None
        assert spec.strategy == "band" and spec.band_op == ">="
        assert spec.band_attr is not None
        assert spec.rewritten.head.attrs[-1] == spec.band_attr

    def test_theta_with_equality_keys_buckets_then_bands(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A = r.A ∧ s.B <= r.B ∧ X.sm = count(s.B)]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert spec.strategy == "band" and spec.band_op == "<="
        assert len(spec.outer_exprs) == 1  # one equality key, one band


class TestProbeRefuses:
    def test_not_equal_correlation_names_the_predicate(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A <> r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "non-equality" in reason and "<> on s.A" in reason

    def test_two_theta_predicates_refuse(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ s.B < r.B ∧ X.sm = sum(s.B)]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "two non-equality predicates" in reason
        assert "< on s.A" in reason and "< on s.B" in reason

    def test_theta_under_grouping_keys_refuses_naming_the_predicate(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.B"
            "[s.A < r.A ∧ X.sm = sum(s.B) ∧ X.g = s.B]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "non-equality" in reason and "< on s.A" in reason
        assert "grouping keys" in reason

    def test_theta_gamma_empty_with_having_refuses(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B) ∧ count(s.B) > 1]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "< on s.A" in reason and "aggregate comparisons" in reason

    def test_theta_gamma_empty_distinct_aggregate_refuses(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sumdistinct(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "< on s.A" in reason and "sumdistinct" in reason

    def test_nested_correlated_lateral(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S, "
            "w ∈ {W(c) | ∃s2 ∈ S[W.c = s2.B ∧ s2.A = r.A]}"
            "[X.B = s.B ∧ s.B = w.c]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "nested lateral" in reason

    def test_correlated_head_assignment(self):
        spec, reason = probe(
            "{Q(A, v) | ∃r ∈ R, x ∈ {X(v) | ∃s ∈ S, γ ∅"
            "[X.v = sum(s.B) + r.A]}[Q.A = r.A ∧ Q.v = x.v]}"
        )
        assert spec is None
        assert "head assignment" in reason

    def test_outer_only_predicate(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[r.A > 1 ∧ s.A = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "outer-only" in reason

    def test_mixed_operand_equality(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A = r.A + s.B ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "mixes" in reason

    def test_correlation_under_nested_scope(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S[X.B = s.B ∧ "
            "∃s2 ∈ S[s2.A = r.A]]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "nested scope" in reason

    def test_disjunctive_inner_body(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S[X.B = s.B ∧ s.A = r.A] ∨ "
            "∃s ∈ S[X.B = s.A ∧ s.A = r.A]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "disjunction" in reason

    def test_grouping_key_correlation(self):
        spec, reason = probe(
            "{Q(A, c) | ∃r ∈ R, x ∈ {X(c) | ∃s ∈ S, γ r.A"
            "[s.A = r.A ∧ X.c = count(s.B)]}[Q.A = r.A ∧ Q.c = x.c]}"
        )
        assert spec is None
        assert "grouping key" in reason

    def test_external_inner_relation(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10)])
        node, binding = _lateral_binding(
            "{Q(A, v) | ∃r ∈ R, x ∈ {X(v) | ∃f ∈ Minus, γ ∅"
            "[f.left = r.A ∧ f.right = 1 ∧ X.v = sum(f.out)]}"
            "[Q.A = r.A ∧ Q.v = x.v]}"
        )
        spec, reason = decorrelate.probe_binding(Evaluator(db, SQL_CONVENTIONS), binding)
        assert spec is None
        assert "no stored extension" in reason

    def test_escape_hatch_disables_the_pass(self):
        spec, reason = probe(EQ_LATERAL, _db(), SQL_CONVENTIONS, decorrelate=False)
        assert spec is None
        assert "disabled" in reason

    def test_stored_binding_is_not_probed(self):
        node = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        spec, reason = decorrelate.probe_binding(
            Evaluator(_db(), SQL_CONVENTIONS), node.body.bindings[0]
        )
        assert spec is None
        assert "stored relation" in reason


class TestNullKeyMutationStaysDecorrelated:
    def test_adding_a_null_key_rebuilds_a_tribucket_index(self):
        """Adding a NULL to the key column used to flip the plan back to
        per-row; the tri-bucket index keeps the scope decorrelated — the
        mutation drops the cached index, the rebuild segregates the new
        UNKNOWN candidate, and probes start counting ``tribucket_probes``
        — while the answer still matches the per-row oracle."""
        db = _db()
        query = parse(EQ_LATERAL)
        first = Evaluator(db, SQL_CONVENTIONS)
        first.evaluate(query)
        assert first.stats.laterals_decorrelated == 1
        assert first.stats.tribucket_probes == 0  # no NULL keys yet

        db["S"].add((NULL, 99))
        second = Evaluator(db, SQL_CONVENTIONS)
        result = second.evaluate(query)
        assert second.stats.lateral_reevals == 0  # still decorrelated
        assert second.stats.decorr_index_builds == 1  # mutation → rebuild
        assert second.stats.tribucket_probes == len(db["R"])
        assert result == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)


class TestSqlRewrite:
    def test_rewrite_preserves_semantics(self):
        """The SQL-level AST rewrite is itself evaluatable: rewritten ≡
        original on the planner under bag conventions."""
        for query in [
            sweeps.correlated_aggregate_query(agg="sum", grouped=True),
            sweeps.correlated_aggregate_query(agg="count", grouped=True, arity=2),
            parse(
                "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
                "s.A < r.A]}[Q.A = r.A ∧ Q.B = z.B]}"
            ),
        ]:
            arity = 2 if "K1" in repr(query) else 1
            if "K0" in repr(query):
                db = sweeps.correlated_sweep_database(15, 20, arity=arity, seed=4)
            else:
                db = _db()
            rewritten, leftovers = decorrelate.rewrite_for_sql(query)
            assert leftovers == ()
            assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
                query, db, SQL_CONVENTIONS, planner=False
            )

    def test_unnest_moves_filters_and_substitutes_references(self):
        correlated = parse(
            "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
            "s.A < r.A ∧ s.B > 0]}[Q.A = r.A ∧ Q.B = z.B ∧ r.B >= z.B]}"
        )
        db = _db()
        rewritten, leftovers = decorrelate.rewrite_for_sql(correlated)
        assert leftovers == ()
        assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
            correlated, db, SQL_CONVENTIONS, planner=False
        )
        # No lateral binding survives in the rewritten scope.
        for sub in rewritten.walk():
            if isinstance(sub, n.Binding):
                assert isinstance(sub.source, n.RelationRef)

    def test_unnest_renames_colliding_inner_variables(self):
        # The inner variable `a` collides with the outer binding `a`;
        # unnesting must rename it, not capture it.
        correlated = parse(
            "{Q(A, v) | ∃a ∈ R, c ∈ R, z ∈ {Z(v) | ∃a ∈ S"
            "[Z.v = a.B ∧ a.A < c.A]}[Q.A = a.A ∧ Q.v = z.v]}"
        )
        db = _db()
        rewritten, leftovers = decorrelate.rewrite_for_sql(correlated)
        assert leftovers == ()
        spliced = [
            sub.var
            for sub in rewritten.walk()
            if isinstance(sub, n.Binding) and isinstance(sub.source, n.RelationRef)
        ]
        assert len(spliced) == len(set(spliced)) == 3  # a, c, and a renamed a
        assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
            correlated, db, SQL_CONVENTIONS, planner=False
        )

    def test_gamma_empty_stays_for_the_scalar_device(self):
        rewritten, leftovers = decorrelate.rewrite_for_sql(parse(EQ_LATERAL))
        assert leftovers == ()
        laterals = [
            sub
            for sub in rewritten.walk()
            if isinstance(sub, n.Binding) and isinstance(sub.source, n.Collection)
        ]
        assert laterals  # untouched: the renderer inlines it as a scalar


# -- θ-band index edge cases ----------------------------------------------------


THETA_GAMMA = (
    "{{Q(A, sm) | ∃r ∈ R, x ∈ {{X(sm) | ∃s ∈ S, γ ∅"
    "[s.A {op} r.A ∧ X.sm = {agg}(s.B)]}}[Q.A = r.A ∧ Q.sm = x.sm]}}"
)

THETA_ROWS = (
    "{{Q(A, B) | ∃r ∈ R, z ∈ {{Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
    "s.A {op} r.A]}}[Q.A = r.A ∧ Q.B = z.B]}}"
)


class TestBandIndexEdges:
    def _check(self, db, query, conventions=SQL_CONVENTIONS):
        """Band path ≡ per-row oracle; returns the band path's stats."""
        evaluator = Evaluator(db, conventions)
        result = evaluator.evaluate(query)
        oracle = Evaluator(db, conventions, decorrelate=False)
        assert result == oracle.evaluate(query)
        return evaluator.stats

    def test_every_operator_and_aggregate_matches_the_oracle(self):
        db = _db()
        for op in ("<", "<=", ">", ">="):
            for agg in ("sum", "count", "avg", "min", "max"):
                stats = self._check(db, parse(THETA_GAMMA.format(op=op, agg=agg)))
                assert stats.lateral_reevals == 0, (op, agg)
            stats = self._check(db, parse(THETA_ROWS.format(op=op)))
            assert stats.lateral_reevals == 0, op

    def test_nan_band_keys_on_both_sides(self):
        # Under 3VL NaN satisfies no ordering predicate: inner NaNs drop
        # out of the band at build time, outer NaNs probe an empty slice
        # (γ∅ still emits its one row).
        nan = float("nan")
        db = Database()
        db.create("R", ("A", "B"), [(1.0, 10), (nan, 20), (3.0, 30)])
        db.create("S", ("A", "B"), [(0.5, 5), (nan, 7), (2.0, 11)])
        for op in ("<", ">="):
            stats = self._check(
                db, parse(THETA_GAMMA.format(op=op, agg="count")), SQL_CONVENTIONS
            )
            assert stats.band_index_builds == 1
            assert stats.lateral_reevals == 0

    def test_nan_band_values_under_2vl_fall_back_per_row(self):
        # 2VL's total-order extension ranks NaN *above* NULL (compare keys
        # (1, NaN) vs (0, 0)), so a NULL outer probe with >/>= selects NaN
        # rows — a sorted band cannot carry that, and the build must fall
        # back to the per-row oracle instead of silently dropping them.
        nan = float("nan")
        db = Database()
        db.create("R", ("A", "B"), [(NULL, 10), (1.0, 20)])
        db.create("S", ("A", "B"), [(nan, 7), (0.5, 5)])
        for op in ("<", "<=", ">", ">="):
            for template in (
                THETA_GAMMA.format(op=op, agg="count"),
                THETA_ROWS.format(op=op),
            ):
                stats = self._check(db, parse(template), SOUFFLE_CONVENTIONS)
                assert stats.band_index_builds == 0
                assert stats.lateral_reevals == len(db["R"])

    def test_null_band_values_3vl_skips_2vl_falls_back(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (2, 20)])
        db.create("S", ("A", "B"), [(0, 5), (NULL, 7), (1, 11)])
        query = parse(THETA_GAMMA.format(op="<", agg="sum"))
        # 3VL: a NULL band value is UNKNOWN for every probe — excluded at
        # build time, and the index counts as tri-bucket.
        stats = self._check(db, query, SQL_CONVENTIONS)
        assert stats.band_index_builds == 1
        assert stats.tribucket_probes == len(db["R"])
        # 2VL orders NULL before everything: the sorted band cannot carry
        # that exactly, so the build aborts and the per-row oracle runs.
        stats = self._check(db, query, SOUFFLE_CONVENTIONS)
        assert stats.band_index_builds == 0
        assert stats.lateral_reevals == len(db["R"])

    def test_null_probe_value_under_2vl_orders_before_everything(self):
        # Outer NULL probes: under 2VL NULL sorts first, so `s.A > r.A`
        # selects the whole band and `s.A < r.A` selects nothing.
        db = Database()
        db.create("R", ("A", "B"), [(NULL, 10), (1, 20)])
        db.create("S", ("A", "B"), [(0, 5), (2, 7)])
        for op in ("<", "<=", ">", ">="):
            stats = self._check(
                db,
                parse(THETA_GAMMA.format(op=op, agg="count")),
                SOUFFLE_CONVENTIONS,
            )
            assert stats.band_index_builds == 1
            assert stats.lateral_reevals == 0

    def test_empty_inner_relation_still_band_indexes(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (2, 20)])
        db.create("S", ("A", "B"), [])
        for op in ("<", ">"):
            for template in (THETA_GAMMA.format(op=op, agg="sum"), THETA_ROWS.format(op=op)):
                stats = self._check(db, parse(template))
                assert stats.band_index_builds == 1
                assert stats.lateral_reevals == 0

    def test_mixed_kind_band_values_fall_back_per_row(self):
        # int and str band values have no total order consistent with the
        # comparison semantics (both directions compare FALSE), so the
        # build refuses and the per-row oracle runs — once per catalog
        # state, cached as unsupported.
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (2, 20)])
        db.create("S", ("A", "B"), [(0, 5), ("x", 7)])
        stats = self._check(db, parse(THETA_GAMMA.format(op="<", agg="count")))
        assert stats.band_index_builds == 0
        assert stats.lateral_reevals == len(db["R"])

    def test_mutation_invalidates_a_cached_band_index_mid_session(self):
        db = _db()
        query = parse(THETA_GAMMA.format(op="<", agg="sum"))
        evaluator = Evaluator(db, SQL_CONVENTIONS)
        first = evaluator.evaluate(query)
        assert evaluator.stats.band_index_builds == 1

        # A second evaluation (same warm caches) probes the shared index.
        evaluator.evaluate(query)
        assert evaluator.stats.band_index_builds == 1

        db["S"].add((0, 100))  # mutation drops the shared band index
        changed = evaluator.evaluate(query)
        assert evaluator.stats.band_index_builds == 2
        assert changed != first
        assert changed == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)

    def test_unreachable_null_group_build_failure_falls_back(self):
        # The eq-strategy build aggregates *every* group of the rewritten
        # collection — including the NULL-keyed group, which no 3VL probe
        # can ever reach.  If that unreachable group's aggregate raises
        # (heterogeneous sum), the build must fall back to the per-row
        # oracle instead of surfacing an error the oracle never produces.
        db = Database()
        db.create("R", ("K0", "misc"), [(1, 0), (2, 1)])
        db.create("S", ("K0", "B"), [(1, 10), (2, 20), (NULL, "oops")])
        query = sweeps.correlated_aggregate_query(agg="sum")
        evaluator = Evaluator(db, SQL_CONVENTIONS)
        result = evaluator.evaluate(query)
        assert evaluator.stats.decorr_index_builds == 0  # build refused
        assert evaluator.stats.lateral_reevals == len(db["R"])
        oracle = Evaluator(db, SQL_CONVENTIONS, decorrelate=False)
        assert result == oracle.evaluate(query)

    def test_band_indexes_are_shared_across_evaluators(self):
        db = _db()
        query = parse(THETA_GAMMA.format(op="<", agg="sum"))
        first = Evaluator(db, SQL_CONVENTIONS)
        first.evaluate(query)
        assert first.stats.band_index_builds == 1
        second = Evaluator(db, SQL_CONVENTIONS)
        second.evaluate(query)
        assert second.stats.band_index_builds == 0  # reused, not rebuilt


class TestBandSqlRewrite:
    def test_non_grouped_band_joins_through_the_inequality(self):
        # A non-grouped θ shape unnest refuses (the inner binding is itself
        # a collection): the band FIO rewrite renders it as an uncorrelated
        # derived table joined through the projected band key.
        correlated = parse(
            "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃u ∈ {U(B) | ∃s ∈ S"
            "[U.B = s.B]}[Z.B = u.B ∧ u.B < r.A]}[Q.A = r.A ∧ Q.B = z.B]}"
        )
        db = _db()
        rewritten, leftovers = decorrelate.rewrite_for_sql(correlated)
        assert leftovers == ()
        # The derived table is uncorrelated (no lateral keyword needed).
        for sub in rewritten.walk():
            if isinstance(sub, n.Binding) and isinstance(sub.source, n.Collection):
                from repro.core.scopes import free_variables

                assert not free_variables(sub.source)
        assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
            correlated, db, SQL_CONVENTIONS, planner=False
        )
