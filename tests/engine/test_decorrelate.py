"""Decorrelation safety: shapes that must *refuse* the FOI → FIO rewrite.

The rewrite is only sound when the lateral's correlation is a pure equality
join on provably NULL-free keys; every other shape must fall back to the
per-row strategy.  These tests drive the probe (`decorrelate.probe_binding`)
directly — asserting the refusal *and* its reason — and check that the
refused shapes still evaluate correctly (differentially) via the fallback.
"""

import pytest

from repro.core import builder as b
from repro.core import nodes as n
from repro.core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import Database, NULL
from repro.engine import Evaluator, decorrelate, evaluate
from repro.workloads import sweeps


def _db(*, null_key=False):
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    s_rows = [(1, 5), (1, 7), (2, 11)]
    if null_key:
        s_rows.append((NULL, 13))
    db.create("S", ("A", "B"), s_rows)
    return db


def _lateral_binding(query_text):
    """The first nested-collection binding of the parsed query's body."""
    node = parse(query_text)
    for binding in node.body.bindings:
        if isinstance(binding.source, n.Collection):
            return node, binding
    raise AssertionError("query has no lateral binding")


def probe(query_text, db=None, conventions=SQL_CONVENTIONS, **kwargs):
    node, binding = _lateral_binding(query_text)
    evaluator = Evaluator(db if db is not None else _db(), conventions, **kwargs)
    spec, reason = decorrelate.probe_binding(evaluator, binding)
    if spec is None:
        # Refused shapes must still evaluate correctly via the per-row path.
        database = evaluator.database
        assert evaluate(node, database, conventions) == evaluate(
            node, database, conventions, planner=False
        )
    return spec, reason


EQ_LATERAL = (
    "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
    "[s.A = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
)


class TestProbeAccepts:
    def test_equality_gamma_empty(self):
        spec, reason = probe(EQ_LATERAL)
        assert reason is None
        assert spec.empty_group
        assert spec.key_attrs == ("_ck0",)
        assert spec.rewritten.head.attrs == ("sm", "_ck0")

    def test_equality_grouped_keys(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.B"
            "[s.A = r.A ∧ X.sm = sum(s.B) ∧ X.g = s.B]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert not spec.empty_group and spec.grouped

    def test_uncorrelated_lateral_materializes_once(self):
        # No correlation keys: the inner scope is still materialized once
        # instead of per outer row.
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert reason is None
        assert spec.key_attrs == ()

    def test_null_keys_accepted_under_two_valued_logic(self):
        # 2VL treats NULL as an ordinary value; the hash probe agrees.
        spec, reason = probe(
            EQ_LATERAL, _db(null_key=True), SOUFFLE_CONVENTIONS
        )
        assert reason is None


class TestProbeRefuses:
    def test_non_equality_correlation(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "non-equality" in reason

    def test_nested_correlated_lateral(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S, "
            "w ∈ {W(c) | ∃s2 ∈ S[W.c = s2.B ∧ s2.A = r.A]}"
            "[X.B = s.B ∧ s.B = w.c]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "nested lateral" in reason

    def test_null_correlation_key_under_3vl(self):
        spec, reason = probe(EQ_LATERAL, _db(null_key=True), SQL_CONVENTIONS)
        assert spec is None
        assert "NULL" in reason and "three-valued" in reason
        # The same catalog under 3VL set conventions refuses identically.
        spec, reason = probe(EQ_LATERAL, _db(null_key=True), SET_CONVENTIONS)
        assert spec is None

    def test_unprovable_key_expression_under_3vl(self):
        # s.A + 0 cannot be proven NULL-free, so 3VL refuses; 2VL accepts.
        query = (
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A + 0 = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        spec, reason = probe(query)
        assert spec is None
        assert "cannot prove" in reason
        spec, reason = probe(query, _db(), SOUFFLE_CONVENTIONS)
        assert reason is None

    def test_correlated_head_assignment(self):
        spec, reason = probe(
            "{Q(A, v) | ∃r ∈ R, x ∈ {X(v) | ∃s ∈ S, γ ∅"
            "[X.v = sum(s.B) + r.A]}[Q.A = r.A ∧ Q.v = x.v]}"
        )
        assert spec is None
        assert "head assignment" in reason

    def test_outer_only_predicate(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[r.A > 1 ∧ s.A = r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "outer-only" in reason

    def test_mixed_operand_equality(self):
        spec, reason = probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A = r.A + s.B ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        assert spec is None
        assert "mixes" in reason

    def test_correlation_under_nested_scope(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S[X.B = s.B ∧ "
            "∃s2 ∈ S[s2.A = r.A]]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "nested scope" in reason

    def test_disjunctive_inner_body(self):
        spec, reason = probe(
            "{Q(A, B) | ∃r ∈ R, x ∈ {X(B) | ∃s ∈ S[X.B = s.B ∧ s.A = r.A] ∨ "
            "∃s ∈ S[X.B = s.A ∧ s.A = r.A]}[Q.A = r.A ∧ Q.B = x.B]}"
        )
        assert spec is None
        assert "disjunction" in reason

    def test_grouping_key_correlation(self):
        spec, reason = probe(
            "{Q(A, c) | ∃r ∈ R, x ∈ {X(c) | ∃s ∈ S, γ r.A"
            "[s.A = r.A ∧ X.c = count(s.B)]}[Q.A = r.A ∧ Q.c = x.c]}"
        )
        assert spec is None
        assert "grouping key" in reason

    def test_external_inner_relation(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10)])
        node, binding = _lateral_binding(
            "{Q(A, v) | ∃r ∈ R, x ∈ {X(v) | ∃f ∈ Minus, γ ∅"
            "[f.left = r.A ∧ f.right = 1 ∧ X.v = sum(f.out)]}"
            "[Q.A = r.A ∧ Q.v = x.v]}"
        )
        spec, reason = decorrelate.probe_binding(Evaluator(db, SQL_CONVENTIONS), binding)
        assert spec is None
        assert "no stored extension" in reason

    def test_escape_hatch_disables_the_pass(self):
        spec, reason = probe(EQ_LATERAL, _db(), SQL_CONVENTIONS, decorrelate=False)
        assert spec is None
        assert "disabled" in reason

    def test_stored_binding_is_not_probed(self):
        node = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        spec, reason = decorrelate.probe_binding(
            Evaluator(_db(), SQL_CONVENTIONS), node.body.bindings[0]
        )
        assert spec is None
        assert "stored relation" in reason


class TestNullKeyMutationFlipsTheDecision:
    def test_adding_a_null_key_reverts_to_per_row(self):
        """The NULL-key decision is data-dependent and re-probed on every
        plan-cache lookup: adding a NULL to the key column must flip the
        cached decorrelated plan back to the per-row strategy (and stay
        correct)."""
        db = _db()
        query = parse(EQ_LATERAL)
        first = Evaluator(db, SQL_CONVENTIONS)
        first.evaluate(query)
        assert first.stats.laterals_decorrelated == 1

        db["S"].add((NULL, 99))
        second = Evaluator(db, SQL_CONVENTIONS)
        result = second.evaluate(query)
        assert second.stats.lateral_reevals == len(db["R"])  # per-row again
        assert result == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)


class TestSqlRewrite:
    def test_rewrite_preserves_semantics(self):
        """The SQL-level AST rewrite is itself evaluatable: rewritten ≡
        original on the planner under bag conventions."""
        for query in [
            sweeps.correlated_aggregate_query(agg="sum", grouped=True),
            sweeps.correlated_aggregate_query(agg="count", grouped=True, arity=2),
            parse(
                "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
                "s.A < r.A]}[Q.A = r.A ∧ Q.B = z.B]}"
            ),
        ]:
            arity = 2 if "K1" in repr(query) else 1
            if "K0" in repr(query):
                db = sweeps.correlated_sweep_database(15, 20, arity=arity, seed=4)
            else:
                db = _db()
            rewritten, leftovers = decorrelate.rewrite_for_sql(query)
            assert leftovers == ()
            assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
                query, db, SQL_CONVENTIONS, planner=False
            )

    def test_unnest_moves_filters_and_substitutes_references(self):
        correlated = parse(
            "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
            "s.A < r.A ∧ s.B > 0]}[Q.A = r.A ∧ Q.B = z.B ∧ r.B >= z.B]}"
        )
        db = _db()
        rewritten, leftovers = decorrelate.rewrite_for_sql(correlated)
        assert leftovers == ()
        assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
            correlated, db, SQL_CONVENTIONS, planner=False
        )
        # No lateral binding survives in the rewritten scope.
        for sub in rewritten.walk():
            if isinstance(sub, n.Binding):
                assert isinstance(sub.source, n.RelationRef)

    def test_unnest_renames_colliding_inner_variables(self):
        # The inner variable `a` collides with the outer binding `a`;
        # unnesting must rename it, not capture it.
        correlated = parse(
            "{Q(A, v) | ∃a ∈ R, c ∈ R, z ∈ {Z(v) | ∃a ∈ S"
            "[Z.v = a.B ∧ a.A < c.A]}[Q.A = a.A ∧ Q.v = z.v]}"
        )
        db = _db()
        rewritten, leftovers = decorrelate.rewrite_for_sql(correlated)
        assert leftovers == ()
        spliced = [
            sub.var
            for sub in rewritten.walk()
            if isinstance(sub, n.Binding) and isinstance(sub.source, n.RelationRef)
        ]
        assert len(spliced) == len(set(spliced)) == 3  # a, c, and a renamed a
        assert evaluate(rewritten, db, SQL_CONVENTIONS) == evaluate(
            correlated, db, SQL_CONVENTIONS, planner=False
        )

    def test_gamma_empty_stays_for_the_scalar_device(self):
        rewritten, leftovers = decorrelate.rewrite_for_sql(parse(EQ_LATERAL))
        assert leftovers == ()
        laterals = [
            sub
            for sub in rewritten.walk()
            if isinstance(sub, n.Binding) and isinstance(sub.source, n.Collection)
        ]
        assert laterals  # untouched: the renderer inlines it as a scalar
