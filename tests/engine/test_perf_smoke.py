"""Perf-regression smoke tests: complexity bounds without timers.

The execution layer exposes instrumentation counters
(:class:`repro.engine.planner.ExecutionStats`), so these tests assert the
*shape* of the work done — an indexed equi-join of N rows must enumerate
O(N) rows, not the O(N²) cross product — which is robust under slow CI
machines where wall-clock assertions flake.
"""

import pytest

from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import Evaluator
from repro.workloads import sweeps


N = 400

JOIN = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"


def _join_db(n=N):
    db = Database()
    db.create("R", ("A", "B"), [(i, i) for i in range(n)])
    db.create("S", ("B", "C"), [(i, i % 7) for i in range(n)])
    return db


def test_indexed_two_way_join_does_linear_work():
    db = _join_db()
    evaluator = Evaluator(db)
    result = evaluator.evaluate(parse(JOIN))
    assert len(result) == N
    stats = evaluator.stats
    # One scan of R (N rows) plus one probe per R row, each hitting a
    # single-row bucket: well under any quadratic blowup (N² = 160000).
    assert stats.rows_enumerated <= 6 * N, stats.as_dict()
    assert stats.index_probes <= N + 5, stats.as_dict()


def test_reference_strategy_does_quadratic_work():
    """The escape hatch really is the nested-loop strategy (sanity check)."""
    n = 60
    db = _join_db(n)
    evaluator = Evaluator(db, planner=False)
    with_planner = Evaluator(db).evaluate(parse(JOIN))
    assert evaluator.evaluate(parse(JOIN)) == with_planner
    # The reference path never touches the planner counters.
    assert evaluator.stats.index_probes == 0


def test_plan_cache_hits_on_reevaluation():
    db = sweeps.size_sweep_database(30, seed=4)
    query = sweeps.lateral_query()
    # decorrelate=False keeps the per-row FOI strategy (the θ-correlated
    # inner scope would otherwise band-decorrelate and evaluate once).
    evaluator = Evaluator(db, decorrelate=False)
    evaluator.evaluate(query)
    # The correlated inner scope re-evaluates per outer row; after the
    # first row its plan must come from the cache.
    assert evaluator.stats.plan_cache_hits > 0
    assert evaluator.stats.plans_compiled <= 4


def test_grouped_fast_path_engages():
    db = sweeps.size_sweep_database(100, seed=1)
    query = sweeps.grouped_aggregate_query()
    evaluator = Evaluator(db)
    result = evaluator.evaluate(query)
    assert not result.is_empty()
    assert evaluator.stats.grouped_fast_paths >= 1


def test_index_reuse_across_evaluations():
    """Indexes live on the relation, so a second evaluator reuses them."""
    db = _join_db()
    first = Evaluator(db)
    first.evaluate(parse(JOIN))
    assert db["S"]._indexes  # index materialized on the stored relation
    second = Evaluator(db)
    second.evaluate(parse(JOIN))
    assert second.stats.index_probes <= N + 5


def test_seminaive_probes_delta_into_maintained_full_index():
    """Delta-aware fixpoint growth: the full relation's hash index must be
    built once and *maintained* across semi-naive rounds (extend_new), not
    invalidated and rebuilt every round by per-row add().

    Nonlinear transitive closure probes the full relation from the delta
    side each round, so a rebuild-per-round regression shows up directly in
    the relation's index_builds counter.
    """
    db = generators.parent_edges(40, seed=7)
    nonlinear = (
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃a1 ∈ A, a2 ∈ A[A.s = a1.s ∧ a1.t = a2.s ∧ A.t = a2.t]}"
    )
    evaluator = Evaluator(db)
    result = evaluator.evaluate(parse(nonlinear))
    assert len(result) >= 39
    full = evaluator.defined["A"]
    assert full._indexes, "the delta variant should probe the full relation"
    assert full.index_builds <= 2, full.index_builds
    assert evaluator.stats.index_probes > 0


def test_extend_new_maintains_existing_indexes():
    rel = Database().create("R", ("A", "B"), [(1, 10), (2, 20)])
    index = rel.index_on(("A",))
    assert rel.index_builds == 1
    rel.extend_new([(3, 30)])
    assert rel.index_on(("A",)) is index  # no invalidation
    assert rel.index_builds == 1
    assert index[(3,)] == [(rel._coerce((3, 30)), 1)]
    assert rel.multiplicity((3, 30)) == 1
    # A duplicate row takes the safe add() path (indexes invalidate).
    rel.extend_new([(3, 30)])
    assert rel.multiplicity((3, 30)) == 2
    assert rel.index_on(("A",)) is not index


def test_extend_new_accumulates_intra_batch_duplicates():
    db = Database()
    rel = db.create("R", ("A", "B"), [(1, 10)])
    rel.index_on(("A",))
    rel.extend_new([(2, 20), (2, 20)])
    assert rel.multiplicity((2, 20)) == 2
    # Index and stored multiplicities must agree after the safe path.
    bucket = rel.index_on(("A",))[(2,)]
    assert sum(mult for _, mult in bucket) == 2
    with pytest.raises(ValueError):
        rel.extend_new([(9, 9)], multiplicity=-1)
    rel.extend_new([(9, 9)], multiplicity=0)
    assert (9, 9) not in rel


# -- FOI → FIO decorrelation ---------------------------------------------------


def _correlated_db(n=300):
    """Outer keys all present in the inner relation (no probe misses)."""
    domain = max(4, n // 4)
    db = Database()
    db.create("R", ("K0", "misc"), [(i % domain, i) for i in range(n)])
    db.create("S", ("K0", "G", "B"), [(i % domain, i % 3, i % 50) for i in range(n)])
    return db


def test_decorrelated_lateral_evaluates_inner_scope_once():
    """The tentpole claim, counter-shaped: with decorrelation the correlated
    inner collection is materialized exactly once as a grouped index, and
    never re-evaluated per outer row (``lateral_reevals == 0``)."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = _correlated_db()
    query = sweeps.correlated_aggregate_query(agg="sum")
    evaluator = Evaluator(db, SQL_CONVENTIONS)
    result = evaluator.evaluate(query)
    assert not result.is_empty()
    stats = evaluator.stats
    assert stats.laterals_decorrelated >= 1, stats.as_dict()
    assert stats.decorr_index_builds == 1, stats.as_dict()
    assert stats.lateral_reevals == 0, stats.as_dict()
    assert stats.lateral_probe_misses == 0, stats.as_dict()

    per_row = Evaluator(db, SQL_CONVENTIONS, decorrelate=False)
    assert per_row.evaluate(query) == result
    # The escape hatch really is the per-row FOI strategy.
    assert per_row.stats.lateral_reevals == len(db["R"])
    assert per_row.stats.decorr_index_builds == 0


def test_decorrelated_index_is_built_once_and_shared():
    """The FIO index lives on the inner relations (grouped-index reuse): a
    second evaluation probes the cached index, and mutating an inner
    relation drops it."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = _correlated_db(100)
    query = sweeps.correlated_aggregate_query(agg="sum")
    first = Evaluator(db, SQL_CONVENTIONS)
    first.evaluate(query)
    assert first.stats.decorr_index_builds == 1

    second = Evaluator(db, SQL_CONVENTIONS)
    result = second.evaluate(query)
    assert second.stats.decorr_index_builds == 0  # reused across evaluators
    assert second.stats.lateral_reevals == 0

    db["S"].add((0, 0, 99))
    third = Evaluator(db, SQL_CONVENTIONS)
    changed = third.evaluate(query)
    assert third.stats.decorr_index_builds == 1  # mutation dropped the cache
    assert changed != result
    assert changed == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)


def test_gamma_empty_probe_misses_are_compensated_not_reevaluated():
    """All-miss γ∅: one compensation per outer row, no full re-evaluations."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = sweeps.correlated_sweep_database(12, 40, seed=6, miss_rate=1.0)
    query = sweeps.correlated_aggregate_query(agg="count")
    evaluator = Evaluator(db, SQL_CONVENTIONS)
    result = evaluator.evaluate(query)
    assert len(result) == len(db["R"])  # γ∅ emits a row per outer row
    assert evaluator.stats.lateral_probe_misses == len(db["R"])
    assert evaluator.stats.lateral_reevals == 0
    assert evaluator.stats.decorr_index_builds == 1


def test_cli_exposes_no_planner_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(["eval", "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "--no-planner"])
    assert args.no_planner is True


def test_cli_exposes_no_decorrelate_flag():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["eval", "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "--no-decorrelate"]
    )
    assert args.no_decorrelate is True


# -- θ-band indexes and batched γ∅ compensation --------------------------------


def test_band_decorrelated_theta_lateral_builds_one_index():
    """The E27 tentpole, counter-shaped: a θ-correlated γ∅ lateral builds
    exactly one band index and never re-evaluates the inner scope per
    outer row (``lateral_reevals == 0``)."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = sweeps.theta_sweep_database(300, 300, band_domain=300, seed=1)
    query = sweeps.theta_aggregate_query(op="<", agg="sum")
    evaluator = Evaluator(db, SQL_CONVENTIONS)
    result = evaluator.evaluate(query)
    assert len(result) == len(db["R"])  # γ∅ emits one row per outer row
    stats = evaluator.stats
    assert stats.laterals_decorrelated >= 1, stats.as_dict()
    assert stats.band_index_builds == 1, stats.as_dict()
    assert stats.lateral_reevals == 0, stats.as_dict()
    assert stats.index_probes >= len(db["R"]), stats.as_dict()

    per_row = Evaluator(db, SQL_CONVENTIONS, decorrelate=False)
    assert per_row.evaluate(query) == result
    assert per_row.stats.lateral_reevals == len(db["R"])
    assert per_row.stats.band_index_builds == 0


def test_band_index_is_cached_and_mutation_invalidates():
    from repro.core.conventions import SQL_CONVENTIONS

    db = sweeps.theta_sweep_database(60, 60, seed=2)
    query = sweeps.theta_aggregate_query(op=">=", agg="count")
    first = Evaluator(db, SQL_CONVENTIONS)
    first.evaluate(query)
    assert first.stats.band_index_builds == 1

    second = Evaluator(db, SQL_CONVENTIONS)
    result = second.evaluate(query)
    assert second.stats.band_index_builds == 0  # reused across evaluators

    db["S"].add((0, 99))
    third = Evaluator(db, SQL_CONVENTIONS)
    changed = third.evaluate(query)
    assert third.stats.band_index_builds == 1  # mutation dropped the cache
    assert changed == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)
    assert changed != result


def test_gamma_empty_misses_are_domain_join_batched():
    """All-miss γ∅: the empty-group frame is synthesized exactly once (the
    domain-join compensation) instead of once per missing outer key, and
    the per-frame path is never taken."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = sweeps.correlated_sweep_database(40, 60, seed=6, miss_rate=1.0)
    query = sweeps.correlated_aggregate_query(agg="count")
    evaluator = Evaluator(db, SQL_CONVENTIONS)
    result = evaluator.evaluate(query)
    assert len(result) == len(db["R"])  # γ∅ emits a row per outer row
    stats = evaluator.stats
    assert stats.lateral_probe_misses == len(db["R"])
    assert stats.domain_join_compensations == 1, stats.as_dict()
    assert stats.lateral_reevals == 0
    assert stats.decorr_index_builds == 1


def test_tribucket_probes_count_on_nullable_keys():
    """NULL-able correlation keys under 3VL decorrelate (no refusal): the
    index is UNKNOWN-aware and every probe against it is counted."""
    from repro.core.conventions import SQL_CONVENTIONS

    db = sweeps.correlated_sweep_database(30, 50, seed=8, null_rate=0.3)
    query = sweeps.correlated_aggregate_query(agg="sum")
    evaluator = Evaluator(db, SQL_CONVENTIONS)
    result = evaluator.evaluate(query)
    stats = evaluator.stats
    assert stats.lateral_reevals == 0, stats.as_dict()
    assert stats.tribucket_probes == len(db["R"]), stats.as_dict()
    assert result == Evaluator(db, SQL_CONVENTIONS, planner=False).evaluate(query)
