"""Differential harness: planner-on must agree with planner-off everywhere.

The hash-indexed execution layer (:mod:`repro.engine.planner`) is meant to
be semantics-preserving by construction; this module enforces that claim by
evaluating every paper workload and families of randomized chain-join and
grouping queries under both strategies and asserting bag equality (or equal
Truth values / equal errors) under several conventions.
"""

import random

import pytest

from repro.core import builder as b
from repro.core import nodes as n
from repro.core.conventions import (
    Conventions,
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
    Semantics,
)
from repro.core.parser import parse
from repro.data import Database, NULL, generators
from repro.engine import evaluate
from repro.errors import ArcError
from repro.workloads import instances, paper_examples, sweeps

BAG = Conventions(semantics=Semantics.BAG)

CONVENTION_SET = [
    ("set", SET_CONVENTIONS),
    ("sql", SQL_CONVENTIONS),
    ("bag", BAG),
]


def assert_agree(node, db, conventions):
    """Planner-on and planner-off must produce identical results or errors."""
    try:
        with_planner = evaluate(node, db, conventions, planner=True)
    except ArcError as exc:
        with pytest.raises(type(exc)):
            evaluate(node, db, conventions, planner=False)
        return
    reference = evaluate(node, db, conventions, planner=False)
    assert with_planner == reference


def _rs_db():
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30), (3, 30)])
    db.create("S", ("B", "C"), [(10, 0), (20, 5), (30, 0), (40, 1)])
    return db


def _matrix_db():
    db = Database()
    db.add(generators.sparse_matrix("A", 4, 5, density=0.5, seed=3))
    db.add(generators.sparse_matrix("B", 5, 4, density=0.5, seed=4))
    return db


PAPER_CASES = [
    ("eq1", _rs_db),
    ("eq2", instances.lateral_instance),
    ("eq3", lambda: sweeps.size_sweep_database(40, seed=9)),
    ("eq7", lambda: sweeps.size_sweep_database(40, seed=9)),
    ("eq8", instances.payroll_instance),
    ("eq10", instances.payroll_instance),
    ("eq12", instances.payroll_instance),
    ("eq13", lambda: instances.boolean_instance(satisfied=True)),
    ("eq13", lambda: instances.boolean_instance(satisfied=False)),
    ("eq14", lambda: instances.boolean_instance(satisfied=True)),
    ("eq14", lambda: instances.boolean_instance(satisfied=False)),
    ("eq15", instances.conventions_instance),
    ("eq16", instances.ancestor_instance),
    ("eq17", lambda: instances.not_in_instance(with_null=True)),
    ("eq17", lambda: instances.not_in_instance(with_null=False)),
    ("not_in_3vl", lambda: instances.not_in_instance(with_null=True)),
    ("eq18", instances.outer_join_instance),
    ("eq19", instances.arithmetic_instance),
    ("eq20", instances.arithmetic_instance),
    ("eq21", instances.arithmetic_instance),
    ("eq22", instances.likes_instance),
    ("eq23_24", instances.likes_instance),
    ("eq25_arc", _matrix_db),
    ("eq26", _matrix_db),
    ("eq27", instances.count_bug_instance),
    ("eq27", instances.count_bug_populated),
    ("eq28", instances.count_bug_instance),
    ("eq28", instances.count_bug_populated),
    ("eq29", instances.count_bug_instance),
    ("eq29", instances.count_bug_populated),
]


@pytest.mark.parametrize(
    "key,db_factory",
    PAPER_CASES,
    ids=[f"{key}-{i}" for i, (key, _) in enumerate(PAPER_CASES)],
)
@pytest.mark.parametrize("conv_name,conventions", CONVENTION_SET)
def test_paper_workloads_agree(key, db_factory, conv_name, conventions):
    node = parse(paper_examples.ARC[key])
    assert_agree(node, db_factory(), conventions)


def test_paper_workloads_agree_souffle_conventions():
    for key, db_factory in [
        ("eq3", lambda: sweeps.size_sweep_database(30, seed=2)),
        ("eq15", instances.conventions_instance),
        ("eq27", instances.count_bug_instance),
    ]:
        assert_agree(parse(paper_examples.ARC[key]), db_factory(), SOUFFLE_CONVENTIONS)


# -- randomized chain joins ---------------------------------------------------


def test_random_chain_joins_agree():
    rng = random.Random(71)
    for trial in range(10):
        width = rng.randint(2, 4)
        rows = rng.randint(4, 30 // width)
        domain = rng.randint(2, 10)
        db = generators.chain_database(width, rows, domain=domain, seed=trial)
        query = sweeps.join_chain_query(width)
        for _, conventions in CONVENTION_SET:
            assert_agree(query, db, conventions)


def test_chain_join_with_nulls_agrees():
    db = Database()
    db.add(
        generators.binary_relation("R0", 15, domain=4, seed=1, attrs=("A", "B"), null_rate=0.3)
    )
    db.add(
        generators.binary_relation("R1", 15, domain=4, seed=2, attrs=("B", "C"), null_rate=0.3)
    )
    query = sweeps.join_chain_query(2)
    for _, conventions in CONVENTION_SET:
        assert_agree(query, db, conventions)


def test_constant_equality_probe_agrees():
    db = generators.chain_database(2, 20, domain=5, seed=8)
    query = parse("{Q(out) | ∃r0 ∈ R0, r1 ∈ R1[Q.out = r1.C ∧ r0.B = r1.B ∧ r0.A = 3]}")
    for _, conventions in CONVENTION_SET:
        assert_agree(query, db, conventions)


# -- randomized grouping queries ----------------------------------------------

AGG_FUNCS = ["sum", "count", "avg", "min", "max", "sumdistinct", "countdistinct"]


def _grouped_query(func, *, grouped_key=True, having=False):
    """{Q(A?, v) | ∃r ∈ R, γ [r.A] [assignments (+ HAVING)]}"""
    agg = n.AggCall(func, b.attr2("r", "B"))
    conjuncts = [n.Comparison(n.Attr("Q", "v"), "=", agg)]
    attrs = ["v"]
    if grouped_key:
        conjuncts.insert(0, b.eq(b.attr2("Q", "A"), b.attr2("r", "A")))
        attrs.insert(0, "A")
        grouping = b.grouping(b.attr2("r", "A"))
    else:
        grouping = b.grouping()
    if having:
        conjuncts.append(n.Comparison(n.AggCall("count", None), ">", n.Const(1)))
    return b.collection(
        "Q", attrs, b.exists([b.bind("r", "R")], b.conj(*conjuncts), grouping=grouping)
    )


@pytest.mark.parametrize("func", AGG_FUNCS)
@pytest.mark.parametrize("null_rate", [0.0, 0.4])
def test_random_grouped_aggregates_agree(func, null_rate):
    rng = random.Random(hash(func) % 1000)
    for trial in range(3):
        db = Database()
        db.add(
            generators.binary_relation(
                "R", rng.randint(0, 40), domain=6, seed=trial, null_rate=null_rate
            )
        )
        for grouped_key in (True, False):
            query = _grouped_query(func, grouped_key=grouped_key)
            for _, conventions in CONVENTION_SET:
                assert_agree(query, db, conventions)


def test_grouped_with_having_agrees():
    db = Database()
    db.add(generators.binary_relation("R", 30, domain=4, seed=5, null_rate=0.2))
    for grouped_key in (True, False):
        query = _grouped_query("sum", grouped_key=grouped_key, having=True)
        for _, conventions in CONVENTION_SET:
            assert_agree(query, db, conventions)


def test_correlated_lateral_group_agrees():
    db = sweeps.size_sweep_database(25, seed=12)
    query = sweeps.lateral_query()
    for _, conventions in CONVENTION_SET:
        assert_agree(query, db, conventions)


# -- correlated-lateral decorrelation (FOI → FIO) ------------------------------


def assert_decorrelation_agrees(node, db, conventions):
    """reference ≡ decorrelated planner ≡ per-row planner (or equal errors)."""
    try:
        reference = evaluate(node, db, conventions, planner=False)
    except ArcError as exc:
        with pytest.raises(type(exc)):
            evaluate(node, db, conventions)
        with pytest.raises(type(exc)):
            evaluate(node, db, conventions, decorrelate=False)
        return
    assert evaluate(node, db, conventions) == reference
    assert evaluate(node, db, conventions, decorrelate=False) == reference


CORRELATED_AGGS = ["sum", "count", "avg", "min", "max"]


def test_correlated_lateral_family_agrees():
    """Seeded FOI family: correlation arity, aggregate, γ∅ vs γ-keys, and
    outer keys missing from the inner relation (empty γ∅ groups)."""
    rng = random.Random(1234)
    for trial in range(8):
        arity = rng.choice([1, 1, 2])
        agg = rng.choice(CORRELATED_AGGS)
        grouped = rng.random() < 0.5
        query = sweeps.correlated_aggregate_query(arity=arity, agg=agg, grouped=grouped)
        db = sweeps.correlated_sweep_database(
            rng.randint(0, 25), rng.randint(0, 40), arity=arity, seed=trial
        )
        for _, conventions in CONVENTION_SET:
            assert_decorrelation_agrees(query, db, conventions)


def test_correlated_lateral_all_outer_groups_empty_agrees():
    """Every probe misses: γ∅ must still emit its empty-group row per outer
    row (the count bug's asymmetry, compensated at probe time)."""
    query = sweeps.correlated_aggregate_query(agg="count")
    db = sweeps.correlated_sweep_database(10, 15, seed=3, miss_rate=1.0)
    for _, conventions in CONVENTION_SET:
        assert_decorrelation_agrees(query, db, conventions)
    summed = sweeps.correlated_aggregate_query(agg="sum")
    for _, conventions in CONVENTION_SET:
        assert_decorrelation_agrees(summed, db, conventions)


def test_correlated_lateral_null_keys_agree():
    """NULL correlation keys: probed through the UNKNOWN-aware tri-bucket
    index under 3VL, through the NULL bucket under 2VL — both must match
    the reference."""
    for grouped in (False, True):
        query = sweeps.correlated_aggregate_query(agg="sum", grouped=grouped)
        db = sweeps.correlated_sweep_database(20, 30, seed=7, null_rate=0.3)
        for _, conventions in CONVENTION_SET + [("souffle", SOUFFLE_CONVENTIONS)]:
            assert_decorrelation_agrees(query, db, conventions)


def test_theta_correlated_family_agrees():
    """Seeded θ-band family (E27): operator, aggregate, equality-key
    bucketing, NULL-able keys (tri-bucket under 3VL, build fallback under
    2VL), and the non-grouped slice shape."""
    rng = random.Random(2718)
    for trial in range(10):
        op = rng.choice(["<", "<=", ">", ">="])
        eq_arity = rng.choice([0, 0, 1])
        null_rate = rng.choice([0.0, 0.0, 0.3])
        null_band_rate = rng.choice([0.0, 0.0, 0.25])
        db = sweeps.theta_sweep_database(
            rng.randint(0, 25),
            rng.randint(0, 40),
            eq_arity=eq_arity,
            seed=trial,
            null_rate=null_rate,
            null_band_rate=null_band_rate,
        )
        if rng.random() < 0.7:
            query = sweeps.theta_aggregate_query(
                op=op, agg=rng.choice(CORRELATED_AGGS), eq_arity=eq_arity
            )
        else:
            query = sweeps.theta_rows_query(op=op)
        for _, conventions in CONVENTION_SET + [("souffle", SOUFFLE_CONVENTIONS)]:
            assert_decorrelation_agrees(query, db, conventions)


def test_theta_join_inner_agrees():
    query = sweeps.theta_join_aggregate_query()
    db = sweeps.theta_sweep_database(20, 25, seed=4, with_join=True)
    for _, conventions in CONVENTION_SET:
        assert_decorrelation_agrees(query, db, conventions)


def test_paper_correlated_workloads_decorrelation_agrees():
    for key, db_factory in [
        ("eq2", instances.lateral_instance),
        ("eq7", lambda: sweeps.size_sweep_database(40, seed=9)),
        ("eq10", instances.payroll_instance),
        ("eq15", instances.conventions_instance),
        ("eq12", instances.payroll_instance),  # uncorrelated: materialize-once
    ]:
        node = parse(paper_examples.ARC[key])
        db = db_factory()
        for _, conventions in CONVENTION_SET:
            assert_decorrelation_agrees(node, db, conventions)


def test_grouped_over_empty_relation_agrees():
    db = Database()
    db.create("R", ("A", "B"), [])
    for grouped_key in (True, False):
        for func in ("sum", "count"):
            query = _grouped_query(func, grouped_key=grouped_key)
            for _, conventions in CONVENTION_SET:
                assert_agree(query, db, conventions)


def test_grouped_all_null_group_agrees():
    db = Database()
    db.create("R", ("A", "B"), [(1, NULL), (1, NULL), (2, 5)])
    for func in AGG_FUNCS:
        query = _grouped_query(func)
        for _, conventions in CONVENTION_SET:
            assert_agree(query, db, conventions)


def test_nan_join_keys_agree():
    """NaN never satisfies '=', so an index probe must not match it either."""
    nan = float("nan")
    db = Database()
    db.create("R", ("A",), [(nan,), (1.0,)])
    db.create("S", ("A",), [(nan,), (1.0,)])
    query = parse("{Q(out) | ∃r ∈ R, s ∈ S[Q.out = 1 ∧ s.A = r.A]}")
    for _, conventions in CONVENTION_SET:
        assert_agree(query, db, conventions)
    grouped = _grouped_query("count")
    db2 = Database()
    db2.create("R", ("A", "B"), [(nan, 1), (nan, 2), (1, 3)])
    for _, conventions in CONVENTION_SET:
        assert_agree(grouped, db2, conventions)


# -- recursion and mutation ---------------------------------------------------


def test_transitive_closure_agrees():
    db = generators.parent_edges(30, seed=21, extra_edges=10)
    query = parse(paper_examples.ARC["eq16"])
    for _, conventions in CONVENTION_SET:
        assert_agree(query, db, conventions)


def test_results_track_relation_mutation():
    """Cached indexes and materialized aggregates must invalidate on add."""
    db = sweeps.size_sweep_database(50, seed=3)
    query = sweeps.grouped_aggregate_query()
    first = evaluate(query, db, SET_CONVENTIONS)
    assert first == evaluate(query, db, SET_CONVENTIONS)  # warm cache
    db["R"].add((99, 7))
    second = evaluate(query, db, SET_CONVENTIONS)
    assert second == evaluate(query, db, SET_CONVENTIONS, planner=False)
    assert first != second

    join = sweeps.join_chain_query(2)
    db2 = generators.chain_database(2, 25, domain=5, seed=6)
    first_join = evaluate(join, db2, SET_CONVENTIONS)
    db2["R1"].add((99, 99))
    db2["R0"].add((99, 99))  # A=99 is outside the generated domain
    assert evaluate(join, db2, SET_CONVENTIONS) == evaluate(
        join, db2, SET_CONVENTIONS, planner=False
    )
    assert first_join != evaluate(join, db2, SET_CONVENTIONS)
