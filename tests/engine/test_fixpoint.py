"""Recursion: least-fixed-point programs checked against networkx."""

import networkx as nx
import pytest

from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import Evaluator, evaluate
from repro.engine.fixpoint import transitive_closure_reference
from repro.errors import ValidationError

from ..conftest import rows_as_tuples

ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


class TestAncestor:
    def test_chain(self, ancestor_db):
        result = evaluate(parse(ANCESTOR), ancestor_db)
        pairs = {(row["s"], row["t"]) for row in result}
        edges = {(row["s"], row["t"]) for row in ancestor_db["P"]}
        assert pairs == transitive_closure_reference(edges)

    def test_matches_networkx(self):
        db = generators.parent_edges(40, seed=11, extra_edges=15)
        result = evaluate(parse(ANCESTOR), db)
        graph = nx.DiGraph((row["s"], row["t"]) for row in db["P"])
        closure = nx.transitive_closure(graph)
        assert {(row["s"], row["t"]) for row in result} == set(closure.edges())

    def test_empty_edges(self):
        db = Database()
        db.create("P", ("s", "t"), [])
        assert evaluate(parse(ANCESTOR), db).is_empty()

    def test_cycle_terminates(self):
        db = Database()
        db.create("P", ("s", "t"), [("a", "b"), ("b", "a")])
        result = evaluate(parse(ANCESTOR), db)
        pairs = {(row["s"], row["t"]) for row in result}
        assert pairs == {("a", "b"), ("b", "a"), ("a", "a"), ("b", "b")}

    def test_standalone_self_reference(self, ancestor_db):
        """A self-referential collection (no Program wrapper) is detected
        and solved by fixpoint automatically."""
        collection = parse(ANCESTOR)
        result = evaluate(collection, ancestor_db)
        assert not result.is_empty()


class TestPrograms:
    def test_view_chain(self, rs_db):
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n"
            "W := {W(A) | ∃v ∈ V[W.A = v.A ∧ v.A > 1]} ; main W"
        )
        assert rows_as_tuples(evaluate(program, rs_db)) == [(2,), (3,)]

    def test_main_collection_uses_definitions(self, rs_db):
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n{Q(A) | ∃v ∈ V[Q.A = v.A]}"
        )
        assert len(evaluate(program, rs_db)) == 3

    def test_mutual_recursion(self):
        """even/odd distance reachability via mutually recursive defs."""
        db = Database()
        db.create("E", ("s", "t"), [("a", "b"), ("b", "c"), ("c", "d")])
        program = parse(
            "Even := {Even(x) | ∃e ∈ E[Even.x = e.s ∧ e.s = 'a'] ∨ "
            "∃e ∈ E, o ∈ Odd[o.x = e.s ∧ Even.x = e.t]} ;\n"
            "Odd := {Odd(x) | ∃e ∈ E, v ∈ Even[v.x = e.s ∧ Odd.x = e.t]} ; main Odd"
        )
        result = evaluate(program, db)
        assert {row["x"] for row in result} == {"b", "d"}

    def test_stratified_negation(self):
        db = Database()
        db.create("P", ("s", "t"), [("a", "b"), ("b", "c")])
        program = parse(
            "A := {A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]} ;\n"
            "NotReach := {NotReach(s, t) | ∃p1 ∈ P, p2 ∈ P[NotReach.s = p1.s ∧ "
            "NotReach.t = p2.t ∧ ¬(∃a ∈ A[a.s = p1.s ∧ a.t = p2.t])]} ; main NotReach"
        )
        result = evaluate(program, db)
        pairs = {(row["s"], row["t"]) for row in result}
        assert ("b", "b") in pairs  # b cannot reach b
        assert ("a", "c") not in pairs  # a reaches c

    def test_unstratified_rejected(self):
        db = Database()
        db.create("P", ("s", "t"), [("a", "b")])
        program = parse(
            "B := {B(x) | ∃p ∈ P[B.x = p.s ∧ ¬(∃b ∈ B[b.x = p.t])]} ; main B"
        )
        with pytest.raises(ValidationError, match="stratification"):
            evaluate(program, db)

    def test_abstract_definition_not_materialized(self, likes_db):
        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ ¬(∃l2 ∈ L, s1 ∈ Sub, s2 ∈ Sub"
            "[l2.d <> l1.d ∧ s1.l = l1.d ∧ s1.r = l2.d ∧ "
            "s2.l = l2.d ∧ s2.r = l1.d])]}"
        )
        evaluator = Evaluator(likes_db)
        result = evaluator.evaluate(program)
        assert "Sub" in evaluator.abstract
        assert "Sub" not in evaluator.defined
        assert rows_as_tuples(result) == [("bob",)]

    def test_main_abstract_cannot_materialize(self, likes_db):
        from repro.errors import EvaluationError

        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ; main Sub"
        )
        with pytest.raises(EvaluationError):
            evaluate(program, likes_db)


class TestReference:
    def test_transitive_closure_reference(self):
        closure = transitive_closure_reference([("a", "b"), ("b", "c")])
        assert closure == {("a", "b"), ("b", "c"), ("a", "c")}


class TestSeminaive:
    """Naive and semi-naive strategies must compute identical fixpoints."""

    def _solve(self, db, program_text, main, *, seminaive):
        from repro.core import nodes as n
        from repro.core.parser import parse
        from repro.engine.fixpoint import materialize_program

        parsed = parse(program_text)
        if not isinstance(parsed, n.Program):
            parsed = n.Program({main: parsed}, main)
        evaluator = Evaluator(db)
        materialize_program(parsed, evaluator, seminaive=seminaive)
        return evaluator.defined[main]

    def test_ancestor_agreement(self):
        db = generators.parent_edges(35, seed=19, extra_edges=12)
        naive = self._solve(db, ANCESTOR, "A", seminaive=False)
        seminaive = self._solve(db, ANCESTOR, "A", seminaive=True)
        assert naive.set_equal(seminaive)

    def test_cycle_agreement(self):
        db = Database()
        db.create("P", ("s", "t"), [("a", "b"), ("b", "c"), ("c", "a")])
        naive = self._solve(db, ANCESTOR, "A", seminaive=False)
        seminaive = self._solve(db, ANCESTOR, "A", seminaive=True)
        assert naive.set_equal(seminaive)
        assert len(seminaive.distinct()) == 9  # full 3x3 closure

    def test_empty_agreement(self):
        db = Database()
        db.create("P", ("s", "t"), [])
        assert self._solve(db, ANCESTOR, "A", seminaive=True).is_empty()

    def test_mutual_recursion_agreement(self):
        db = Database()
        db.create("E", ("s", "t"), [("a", "b"), ("b", "c"), ("c", "d")])
        text = (
            "Even := {Even(x) | ∃e ∈ E[Even.x = e.s ∧ e.s = 'a'] ∨ "
            "∃e ∈ E, o ∈ Odd[o.x = e.s ∧ Even.x = e.t]} ;\n"
            "Odd := {Odd(x) | ∃e ∈ E, v ∈ Even[v.x = e.s ∧ Odd.x = e.t]} ; main Odd"
        )
        naive = self._solve(db, text, "Odd", seminaive=False)
        seminaive = self._solve(db, text, "Odd", seminaive=True)
        assert naive.set_equal(seminaive)

    def test_delta_relations_cleaned_up(self, ancestor_db):
        from repro.core import nodes as n
        from repro.core.parser import parse
        from repro.engine.fixpoint import materialize_program

        program = n.Program({"A": parse(ANCESTOR)}, "A")
        evaluator = Evaluator(ancestor_db)
        materialize_program(program, evaluator, seminaive=True)
        assert "ΔA" not in evaluator.defined
