"""External relations: access patterns, chained resolution, safety errors."""

import pytest

from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.engine.externals import (
    ExternalRegistry,
    ExternalRelation,
    standard_registry,
)
from repro.errors import EvaluationError, SchemaError

from ..conftest import rows_as_tuples


@pytest.fixture
def rst_db():
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 3)])
    db.create("S", ("B",), [(4,)])
    db.create("T", ("B",), [(5,)])
    return db


class TestAccessPatterns:
    def test_minus_forward(self):
        minus = standard_registry().get("Minus")
        assert minus.complete({"left": 5, "right": 3}) == [
            {"left": 5, "right": 3, "out": 2}
        ]

    def test_minus_inverse_patterns(self):
        minus = standard_registry().get("Minus")
        assert minus.complete({"left": 5, "out": 2}) == [
            {"left": 5, "out": 2, "right": 3}
        ]
        assert minus.complete({"right": 3, "out": 2}) == [
            {"right": 3, "out": 2, "left": 5}
        ]

    def test_membership_check(self):
        minus = standard_registry().get("Minus")
        assert minus.complete({"left": 5, "right": 3, "out": 2})
        assert minus.complete({"left": 5, "right": 3, "out": 99}) == []

    def test_accepts(self):
        minus = standard_registry().get("Minus")
        assert minus.accepts({"left", "right"})
        assert not minus.accepts({"left"})

    def test_null_inputs_yield_nothing(self):
        from repro.data.values import NULL

        minus = standard_registry().get("Minus")
        assert minus.complete({"left": NULL, "right": 3}) == []

    def test_comparison_relation_is_check_only(self):
        bigger = standard_registry().get(">")
        assert bigger.complete({"left": 5, "right": 3}) == [{"left": 5, "right": 3}]
        assert bigger.complete({"left": 3, "right": 5}) == []
        with pytest.raises(EvaluationError):
            bigger.complete({"left": 5})

    def test_times_division_pattern(self):
        times = standard_registry().get("*")
        assert times.complete({"$1": 3, "out": 12}) == [{"$1": 3, "out": 12, "$2": 4}]
        assert times.complete({"$1": 0, "out": 12}) == []

    def test_aliases(self):
        registry = standard_registry()
        assert registry.get("-") is registry.get("Minus")
        assert registry.get("+") is registry.get("Add")
        assert "Concat" in registry

    def test_unknown_external(self):
        with pytest.raises(SchemaError):
            standard_registry().get("Frobnicate")


class TestQueriesWithExternals:
    def test_eq20_reified_minus(self, rst_db):
        query = parse(
            "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus"
            "[Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}"
        )
        assert rows_as_tuples(evaluate(query, rst_db)) == [(1,)]

    def test_eq19_inline_equals_eq20_reified(self, rst_db):
        inline = parse(
            "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T[Q.A = r.A ∧ r.B - s.B > t.B]}"
        )
        reified = parse(
            "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus"
            "[Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}"
        )
        assert evaluate(inline, rst_db).set_equal(evaluate(reified, rst_db))

    def test_eq21_chained_externals(self, rst_db):
        query = parse(
            "{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus, g ∈ Bigger"
            "[Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ "
            "f.out = g.left ∧ g.right = t.B]}"
        )
        assert rows_as_tuples(evaluate(query, rst_db)) == [(1,)]

    def test_unresolvable_external_is_unsafe(self, rst_db):
        query = parse("{Q(o) | ∃f ∈ Minus[Q.o = f.out ∧ f.left = 1]}")
        with pytest.raises(EvaluationError, match="unsafe|access pattern"):
            evaluate(query, rst_db)

    def test_external_output_binding(self, rst_db):
        query = parse(
            "{Q(o) | ∃r ∈ R, f ∈ Minus[Q.o = f.out ∧ f.left = r.B ∧ f.right = 1]}"
        )
        assert rows_as_tuples(evaluate(query, rst_db)) == [(2,), (9,)]

    def test_custom_external(self):
        double = ExternalRelation(
            "Double",
            ("x", "y"),
            {("x",): lambda k: [{**k, "y": k["x"] * 2}]},
        )
        registry = ExternalRegistry([double])
        db = Database()
        db.create("R", ("A",), [(1,), (2,)])
        query = parse("{Q(y) | ∃r ∈ R, d ∈ Double[Q.y = d.y ∧ d.x = r.A]}")
        assert rows_as_tuples(evaluate(query, db, externals=registry)) == [(2,), (4,)]

    def test_incomplete_pattern_output_raises(self):
        bad = ExternalRelation("Bad", ("x", "y"), {("x",): lambda k: [{"x": k["x"]}]})
        registry = ExternalRegistry([bad])
        db = Database()
        db.create("R", ("A",), [(1,)])
        query = parse("{Q(y) | ∃r ∈ R, b ∈ Bad[Q.y = b.y ∧ b.x = r.A]}")
        with pytest.raises(EvaluationError, match="undetermined"):
            evaluate(query, db, externals=registry)
