"""Grouping scopes: FIO, FOI, γ∅, multiple aggregates, HAVING-like filters."""

import pytest

from repro.core.conventions import SET_CONVENTIONS, SOUFFLE_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL, Truth, is_null
from repro.engine import evaluate

from ..conftest import rows_as_tuples


class TestFio:
    def test_grouped_sum(self, grouped_db):
        result = evaluate(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 30), (2, 5)]

    def test_multiple_aggregates_share_scope(self, grouped_db):
        result = evaluate(
            parse(
                "{Q(A, sm, mx, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ "
                "Q.sm = sum(r.B) ∧ Q.mx = max(r.B) ∧ Q.ct = count(r.B)]}"
            ),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 30, 20, 2), (2, 5, 5, 1)]

    def test_avg_min(self, grouped_db):
        result = evaluate(
            parse("{Q(A, av, mn) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.av = avg(r.B) ∧ Q.mn = min(r.B)]}"),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 15.0, 10), (2, 5.0, 5)]

    def test_count_star(self, grouped_db):
        result = evaluate(
            parse("{Q(A, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.ct = count(*)]}"),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 2), (2, 1)]

    def test_gamma_empty_over_all(self, grouped_db):
        result = evaluate(
            parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}"), grouped_db
        )
        assert rows_as_tuples(result) == [(35,)]

    def test_gamma_empty_on_empty_input_yields_one_group(self):
        db = Database()
        db.create("R", ("A", "B"), [])
        result = evaluate(parse("{Q(ct) | ∃r ∈ R, γ ∅[Q.ct = count(r.B)]}"), db)
        assert rows_as_tuples(result) == [(0,)]

    def test_keyed_grouping_on_empty_input_yields_no_groups(self):
        db = Database()
        db.create("R", ("A", "B"), [])
        result = evaluate(
            parse("{Q(A, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.ct = count(r.B)]}"), db
        )
        assert result.is_empty()

    def test_group_keys_with_nulls_group_together(self):
        db = Database()
        db.create("R", ("A", "B"), [(NULL, 1), (NULL, 2), (3, 3)])
        result = evaluate(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"), db
        )
        rows = rows_as_tuples(result)
        assert len(rows) == 2
        assert (3, 3) in rows

    def test_row_filter_applies_before_grouping(self, grouped_db):
        result = evaluate(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B) ∧ r.B > 5]}"),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 30)]

    def test_grouping_expression_key(self, grouped_db):
        result = evaluate(
            parse("{Q(par, ct) | ∃r ∈ R, γ ∅[Q.par = 1 ∧ Q.ct = count(r.B)]}"),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1, 3)]


class TestAggregateFilters:
    def test_having_like_comparison(self, grouped_db):
        result = evaluate(
            parse(
                "{Q(A) | ∃x ∈ {X(A, sm) | ∃r ∈ R, γ r.A[X.A = r.A ∧ X.sm = sum(r.B)]}"
                "[Q.A = x.A ∧ x.sm > 10]}"
            ),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1,)]

    def test_aggregate_comparison_in_scope(self, grouped_db):
        """An aggregation comparison predicate filters groups directly."""
        result = evaluate(
            parse(
                "{Q(A) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ sum(r.B) > 10]}"
            ),
            grouped_db,
        )
        assert rows_as_tuples(result) == [(1,)]


class TestFoi:
    def test_foi_equals_fio(self, grouped_db):
        fio = evaluate(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"),
            grouped_db,
        )
        foi = evaluate(
            parse(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅"
                "[r2.A = r.A ∧ X.sm = sum(r2.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
            ),
            grouped_db,
        )
        assert fio.set_equal(foi)

    def test_foi_empty_group_produces_null(self, grouped_db):
        result = evaluate(
            parse(
                "{Q(A, sm) | ∃s ∈ S, x ∈ {X(sm) | ∃r ∈ R, γ ∅"
                "[r.A > 99 ∧ X.sm = sum(r.B)]}[Q.A = s.A ∧ Q.sm = x.sm]}"
            ),
            grouped_db,
        )
        assert all(is_null(row["sm"]) for row in result)

    def test_foi_empty_group_zero_under_souffle(self, grouped_db):
        result = evaluate(
            parse(
                "{Q(A, sm) | ∃s ∈ S, x ∈ {X(sm) | ∃r ∈ R, γ ∅"
                "[r.A > 99 ∧ X.sm = sum(r.B)]}[Q.A = s.A ∧ Q.sm = x.sm]}"
            ),
            grouped_db,
            SOUFFLE_CONVENTIONS,
        )
        assert all(row["sm"] == 0 for row in result)


class TestBooleanGrouping:
    def test_eq13_true(self):
        db = Database()
        db.create("R", ("id", "q"), [(1, 2)])
        db.create("S", ("id", "d"), [(1, "x"), (1, "y"), (1, "z")])
        sentence = parse("∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q <= count(s.d)]]")
        assert evaluate(sentence, db) is Truth.TRUE

    def test_eq14_dual(self):
        db = Database()
        db.create("R", ("id", "q"), [(1, 2)])
        db.create("S", ("id", "d"), [(1, "x"), (1, "y"), (1, "z")])
        sentence = parse("¬∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q > count(s.d)]]")
        assert evaluate(sentence, db) is Truth.TRUE

    def test_eq13_false_when_count_short(self):
        db = Database()
        db.create("R", ("id", "q"), [(1, 5)])
        db.create("S", ("id", "d"), [(1, "x")])
        sentence = parse("∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q <= count(s.d)]]")
        assert evaluate(sentence, db) is Truth.FALSE

    def test_grouped_boolean_with_keys(self, grouped_db):
        sentence = parse("∃s ∈ S[∃r ∈ R, γ r.A[r.A = s.A ∧ sum(r.B) > 10]]")
        assert evaluate(sentence, grouped_db) is Truth.TRUE


class TestDeduplication:
    def test_grouping_as_distinct(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2), (1, 2), (3, 4)])
        from repro.core.conventions import Conventions, Semantics

        bag = Conventions(semantics=Semantics.BAG)
        result = evaluate(
            parse("{Q(A, B) | ∃r ∈ R, γ r.A, r.B[Q.A = r.A ∧ Q.B = r.B]}"), db, bag
        )
        assert len(result) == 2
