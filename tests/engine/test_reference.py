"""Direct tests of the brute-force reference oracle (beyond differential)."""

import pytest

from repro.core.conventions import SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, Truth
from repro.engine.reference import reference_evaluate
from repro.errors import EvaluationError

from ..conftest import rows_as_tuples


class TestBasics:
    def test_projection(self, rs_db):
        result = reference_evaluate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), rs_db)
        assert rows_as_tuples(result) == [(1,), (2,), (3,)]

    def test_join(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
        assert rows_as_tuples(reference_evaluate(query, rs_db)) == [(1,), (3,)]

    def test_sentence(self, rs_db):
        assert reference_evaluate(parse("∃r ∈ R[r.A = 1]"), rs_db) is Truth.TRUE

    def test_lateral_nested_collection(self, rs_db):
        query = parse(
            "{Q(A) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ s.B = r.B]}"
            "[Q.A = r.A]}"
        )
        result = reference_evaluate(query, rs_db)
        assert rows_as_tuples(result) == [(1,), (2,), (3,)]

    def test_disjunction(self, rs_db):
        query = parse("{Q(v) | ∃r ∈ R[Q.v = r.A] ∨ ∃s ∈ S[Q.v = s.C]}")
        result = reference_evaluate(query, rs_db)
        assert rows_as_tuples(result) == [(0,), (1,), (2,), (3,), (5,)]


class TestUnsupported:
    def test_grouping_rejected(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R, γ r.A[Q.A = r.A]}")
        with pytest.raises(EvaluationError, match="grouping"):
            reference_evaluate(query, rs_db)

    def test_aggregates_rejected(self, rs_db):
        query = parse("{Q(s) | ∃r ∈ R, γ ∅[Q.s = sum(r.B)]}")
        with pytest.raises(EvaluationError):
            reference_evaluate(query, rs_db)

    def test_join_annotations_rejected(self, rs_db):
        query = parse("{Q(A) | ∃r ∈ R, s ∈ S, left(r, s)[Q.A = r.A ∧ r.B = s.B]}")
        with pytest.raises(EvaluationError, match="join"):
            reference_evaluate(query, rs_db)

    def test_program_rejected(self, rs_db):
        program = parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        with pytest.raises(EvaluationError):
            reference_evaluate(program, rs_db)
