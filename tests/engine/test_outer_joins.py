"""Join-annotation evaluation: left/full/inner trees, literal leaves,
condition assignment, null padding (Section 2.11)."""

import pytest

from repro.core.conventions import Conventions, Semantics
from repro.core.parser import parse
from repro.data import Database, NULL, is_null
from repro.engine import evaluate

from ..conftest import rows_as_tuples

BAG = Conventions(semantics=Semantics.BAG)


@pytest.fixture
def lr_db():
    db = Database()
    db.create("L", ("a", "b"), [(1, 10), (2, 20), (3, 30)])
    db.create("R", ("b", "c"), [(10, "x"), (30, "z"), (99, "w")])
    return db


class TestLeftJoin:
    def test_matching_and_padded(self, lr_db):
        query = parse(
            "{Q(a, c) | ∃l ∈ L, r ∈ R, left(l, r)[Q.a = l.a ∧ Q.c = r.c ∧ l.b = r.b]}"
        )
        assert rows_as_tuples(evaluate(query, lr_db)) == [
            (1, "x"), (2, NULL), (3, "z"),
        ]

    def test_unpreserved_right_rows_dropped(self, lr_db):
        query = parse(
            "{Q(c) | ∃l ∈ L, r ∈ R, left(l, r)[Q.c = r.c ∧ l.b = r.b]}"
        )
        values = {row["c"] for row in evaluate(query, lr_db)}
        assert "w" not in values

    def test_right_only_filter_acts_as_on_condition(self, lr_db):
        # A conjunct referencing only the optional side filters its rows
        # *before* matching: unmatched left rows survive null-padded.
        query = parse(
            "{Q(a, c) | ∃l ∈ L, r ∈ R, left(l, r)"
            "[Q.a = l.a ∧ Q.c = r.c ∧ l.b = r.b ∧ r.c = 'x']}"
        )
        assert rows_as_tuples(evaluate(query, lr_db)) == [
            (1, "x"), (2, NULL), (3, NULL),
        ]

    def test_multiplicities_under_bag(self):
        db = Database()
        db.create("L", ("a",), [(1,), (1,)])
        db.create("R", ("a",), [(1,), (1,), (1,)])
        query = parse("{Q(a) | ∃l ∈ L, r ∈ R, left(l, r)[Q.a = l.a ∧ l.a = r.a]}")
        assert len(evaluate(query, db, BAG)) == 6


class TestLiteralLeaf:
    def test_fig12_semantics(self):
        db = Database()
        db.create("R", ("m", "y", "h"), [(1, 100, 11), (2, 200, 12), (3, 300, 11)])
        db.create("S", ("y", "n"), [(100, "x"), (200, "y2"), (300, "z")])
        query = parse(
            "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s))"
            "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
        )
        # Row 2 has h=12: it fails the ON condition but is preserved.
        assert rows_as_tuples(evaluate(query, db)) == [
            (1, "x"), (2, NULL), (3, "z"),
        ]

    def test_without_literal_leaf_becomes_filter(self):
        db = Database()
        db.create("R", ("m", "y", "h"), [(1, 100, 11), (2, 200, 12)])
        db.create("S", ("y", "n"), [(100, "x"), (200, "y2")])
        query = parse(
            "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, s)"
            "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
        )
        # h = 11 covers only the preserved leaf -> enumeration filter:
        # row 2 disappears entirely.
        assert rows_as_tuples(evaluate(query, db)) == [(1, "x")]


class TestFullJoin:
    def test_both_sides_padded(self, lr_db):
        query = parse(
            "{Q(a, c) | ∃l ∈ L, r ∈ R, full(l, r)[Q.a = l.a ∧ Q.c = r.c ∧ l.b = r.b]}"
        )
        rows = rows_as_tuples(evaluate(query, lr_db))
        assert (2, NULL) in rows  # left-unmatched
        assert (NULL, "w") in rows  # right-unmatched
        assert len(rows) == 4


class TestNestedAnnotations:
    def test_inner_then_left(self):
        db = Database()
        db.create("R", ("a",), [(1,), (2,)])
        db.create("S", ("a", "b"), [(1, 10)])
        db.create("T", ("b",), [(10,)])
        query = parse(
            "{Q(a, b) | ∃r ∈ R, s ∈ S, t ∈ T, left(r, inner(s, t))"
            "[Q.a = r.a ∧ Q.b = t.b ∧ r.a = s.a ∧ s.b = t.b]}"
        )
        assert rows_as_tuples(evaluate(query, db)) == [(1, 10), (2, NULL)]

    def test_left_of_left(self):
        db = Database()
        db.create("R", ("a",), [(1,), (2,)])
        db.create("S", ("a",), [(1,)])
        db.create("T", ("a",), [])
        query = parse(
            "{Q(a, b, c) | ∃r ∈ R, s ∈ S, t ∈ T, left(left(r, s), t)"
            "[Q.a = r.a ∧ Q.b = s.a ∧ Q.c = t.a ∧ r.a = s.a ∧ s.a = t.a]}"
        )
        rows = rows_as_tuples(evaluate(query, db))
        assert (1, 1, NULL) in rows and (2, NULL, NULL) in rows

    def test_uncovered_bindings_cross_joined(self):
        db = Database()
        db.create("R", ("a",), [(1,)])
        db.create("S", ("a",), [])
        db.create("U", ("k",), [(7,), (8,)])
        query = parse(
            "{Q(a, k) | ∃r ∈ R, s ∈ S, u ∈ U, left(r, s)"
            "[Q.a = r.a ∧ Q.k = u.k ∧ r.a = s.a]}"
        )
        assert len(evaluate(query, db)) == 2


class TestPaddedValues:
    def test_null_row_attributes_are_null(self, lr_db):
        query = parse(
            "{Q(a, c) | ∃l ∈ L, r ∈ R, left(l, r)[Q.a = l.a ∧ Q.c = r.c ∧ l.b = r.b]}"
        )
        padded = [row for row in evaluate(query, lr_db) if is_null(row["c"])]
        assert len(padded) == 1

    def test_count_ignores_padded(self):
        """Fig. 21c: count over the padded side yields 0, not 1."""
        db = Database()
        db.create("R", ("id",), [(9,)])
        db.create("S", ("id", "d"), [])
        query = parse(
            "{Q(id, ct) | ∃s ∈ S, r ∈ R, γ r.id, left(r, s)"
            "[Q.id = r.id ∧ Q.ct = count(s.d) ∧ r.id = s.id]}"
        )
        assert rows_as_tuples(evaluate(query, db)) == [(9, 0)]
