"""Deadline-aware execution: timeouts and row budgets on every tier.

The acceptance property: a runaway query returns
:class:`~repro.errors.QueryTimeout` within 2× its configured ``timeout_ms``
on all three backends, instead of hanging.  The runaway here is an
unbounded recursion (``T.x = t.x + 1`` grows forever) — the paper's
fixpoint semantics guarantee it never converges, so only the deadline can
stop it.
"""

import time

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.errors import BudgetExceeded, OptionsError, QueryTimeout
from repro.util.deadline import STRIDE, Deadline

#: Diverging fixpoint: the base disjunct seeds from P, the recursive one
#: adds x+1 forever.
RUNAWAY = "{T(x) | ∃p ∈ P[T.x = p.x] ∨ ∃t ∈ T[T.x = t.x + 1]}"


def _db():
    db = repro.Database()
    db.create("P", ("x",), [(1,)])
    return db


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now
        self.reads = 0

    def __call__(self):
        self.reads += 1
        return self.now


class TestDeadlineUnit:
    def test_check_raises_only_past_the_deadline(self):
        clock = FakeClock()
        deadline = Deadline(timeout_ms=100, clock=clock)
        clock.now = 0.099
        deadline.check()  # inside the budget
        clock.now = 0.101
        with pytest.raises(QueryTimeout, match="100 ms deadline"):
            deadline.check()

    def test_no_timeout_means_check_never_raises(self):
        deadline = Deadline(max_rows=10, clock=FakeClock())
        deadline.check()
        assert not deadline.expired()

    def test_tick_reads_the_clock_once_per_stride(self):
        clock = FakeClock()
        deadline = Deadline(timeout_ms=100, clock=clock)
        reads_after_init = clock.reads
        for _ in range(STRIDE - 1):
            deadline.tick()
        assert clock.reads == reads_after_init  # counter bumps only
        deadline.tick()  # the STRIDE-th tick reads the clock
        assert clock.reads == reads_after_init + 1

    def test_tick_raises_on_the_stride_boundary_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline(timeout_ms=100, clock=clock)
        clock.now = 1.0  # long past the deadline
        with pytest.raises(QueryTimeout):
            for _ in range(STRIDE + 1):
                deadline.tick()

    def test_count_rows_enforces_the_budget(self):
        deadline = Deadline(max_rows=5)
        deadline.count_rows(5)
        with pytest.raises(BudgetExceeded, match="max_rows=5"):
            deadline.count_rows()
        assert deadline.rows == 6

    def test_count_rows_without_budget_only_accumulates(self):
        deadline = Deadline(timeout_ms=10_000)
        deadline.count_rows(1_000_000)
        assert deadline.rows == 1_000_000


class TestOptionsValidation:
    @pytest.mark.parametrize("bad", [0, -1, -0.5, "fast", True])
    def test_nonpositive_or_nonnumeric_timeout_raises(self, bad):
        with pytest.raises(OptionsError, match="timeout_ms"):
            EvalOptions(timeout_ms=bad)

    @pytest.mark.parametrize("bad", [0, -3, 1.5, True, "many"])
    def test_bad_max_rows_raises(self, bad):
        with pytest.raises(OptionsError, match="max_rows"):
            EvalOptions(max_rows=bad)

    def test_deadline_override_is_validated_too(self):
        options = EvalOptions()
        with pytest.raises(OptionsError, match="override timeout_ms"):
            options.deadline(timeout_ms=-1)

    def test_unbounded_options_arm_no_deadline(self):
        assert EvalOptions().deadline() is None

    def test_override_takes_precedence_over_the_option_set(self):
        options = EvalOptions(timeout_ms=5_000, max_rows=10)
        deadline = options.deadline(timeout_ms=50)
        assert deadline.timeout_ms == 50
        assert deadline.max_rows == 10  # inherited where not overridden


class TestRunawayTimeouts:
    """The acceptance criterion, per backend."""

    @pytest.mark.parametrize(
        "backend,conventions",
        [
            (None, SET_CONVENTIONS),        # in-process planner
            ("reference", SET_CONVENTIONS),  # nested-loop oracle
            ("sqlite", SQL_CONVENTIONS),     # WITH RECURSIVE offload
        ],
        ids=["planner", "reference", "sqlite"],
    )
    def test_runaway_times_out_within_twice_the_budget(
        self, backend, conventions
    ):
        timeout_ms = 300
        options = (
            EvalOptions(timeout_ms=timeout_ms)
            if backend is None
            else EvalOptions(timeout_ms=timeout_ms, backend=backend)
        )
        session = Session(_db(), conventions, options=options)
        start = time.monotonic()
        with pytest.raises(QueryTimeout):
            session.prepare(RUNAWAY).run()
        elapsed_ms = (time.monotonic() - start) * 1000
        # 2× the budget plus scheduling slack: generous enough not to
        # flake under CI load, tight enough to prove the abort is prompt.
        assert elapsed_ms < 2 * timeout_ms + 500
        assert session.stats.timeouts == 1

    def test_per_run_override_beats_the_session_default(self):
        session = Session(
            _db(), SET_CONVENTIONS, options=EvalOptions(timeout_ms=60_000)
        )
        start = time.monotonic()
        with pytest.raises(QueryTimeout):
            session.prepare(RUNAWAY).run(timeout_ms=200)
        assert (time.monotonic() - start) < 2.0


class TestRowBudget:
    def test_runaway_trips_the_row_budget(self):
        session = Session(
            _db(), SET_CONVENTIONS, options=EvalOptions(max_rows=50)
        )
        with pytest.raises(BudgetExceeded):
            session.prepare(RUNAWAY).run()
        assert session.stats.budget_exceeded == 1

    def test_budget_on_sqlite_fetch(self):
        db = repro.Database()
        db.create("R", ("A",), [(i,) for i in range(100)])
        session = Session(
            db, SQL_CONVENTIONS,
            options=EvalOptions(backend="sqlite", max_rows=10),
        )
        with pytest.raises(BudgetExceeded):
            session.prepare("{Q(A) | ∃r ∈ R[Q.A = r.A]}").run()
        assert session.stats.budget_exceeded == 1

    def test_within_budget_answers_normally(self):
        session = Session(
            _db(), SET_CONVENTIONS, options=EvalOptions(max_rows=1_000)
        )
        result = session.prepare("{Q(x) | ∃p ∈ P[Q.x = p.x]}").run()
        assert [row["x"] for row in result.sorted_rows()] == [1]
        assert session.stats.budget_exceeded == 0

    def test_unbounded_runs_pay_no_accounting(self):
        session = Session(_db(), SET_CONVENTIONS)
        result = session.prepare("{Q(x) | ∃p ∈ P[Q.x = p.x]}").run()
        assert len(result) == 1
        assert session.stats.timeouts == 0
        assert session.stats.budget_exceeded == 0


class TestErrorTaxonomy:
    def test_resource_errors_are_arc_errors(self):
        assert issubclass(QueryTimeout, repro.ResourceError)
        assert issubclass(BudgetExceeded, repro.ResourceError)
        assert issubclass(repro.ResourceError, repro.ArcError)
