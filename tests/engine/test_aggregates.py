"""Unit tests for the aggregate fold functions and their conventions."""

import pytest
from hypothesis import given, strategies as st

from repro.core.conventions import Conventions, EmptyAggregate, SET_CONVENTIONS
from repro.data.values import NULL, is_null
from repro.engine.aggregates import aggregate, count_rows
from repro.errors import EvaluationError

ZERO = Conventions(empty_aggregate=EmptyAggregate.ZERO)


def pairs(values):
    return [(v, 1) for v in values]


class TestBasicFolds:
    def test_sum(self):
        assert aggregate("sum", pairs([1, 2, 3]), SET_CONVENTIONS) == 6

    def test_count(self):
        assert aggregate("count", pairs([1, 2, NULL]), SET_CONVENTIONS) == 2

    def test_avg(self):
        assert aggregate("avg", pairs([1, 2, 3]), SET_CONVENTIONS) == 2

    def test_min_max(self):
        assert aggregate("min", pairs([3, 1, 2]), SET_CONVENTIONS) == 1
        assert aggregate("max", pairs([3, 1, 2]), SET_CONVENTIONS) == 3

    def test_multiplicities(self):
        assert aggregate("sum", [(5, 3)], SET_CONVENTIONS) == 15
        assert aggregate("count", [(5, 3)], SET_CONVENTIONS) == 3
        assert aggregate("avg", [(4, 1), (8, 3)], SET_CONVENTIONS) == 7

    def test_count_rows(self):
        assert count_rows([1, 2, 3]) == 6


class TestNullHandling:
    def test_nulls_skipped(self):
        assert aggregate("sum", pairs([1, NULL, 2]), SET_CONVENTIONS) == 3
        assert aggregate("min", pairs([NULL, 5]), SET_CONVENTIONS) == 5

    def test_all_null_is_empty(self):
        assert is_null(aggregate("sum", pairs([NULL, NULL]), SET_CONVENTIONS))

    def test_count_all_null_is_zero(self):
        assert aggregate("count", pairs([NULL]), SET_CONVENTIONS) == 0


class TestEmptyConvention:
    @pytest.mark.parametrize("func", ["sum", "avg", "min", "max"])
    def test_empty_null_convention(self, func):
        assert is_null(aggregate(func, [], SET_CONVENTIONS))

    @pytest.mark.parametrize("func", ["sum", "avg", "min", "max"])
    def test_empty_zero_convention(self, func):
        assert aggregate(func, [], ZERO) == 0

    def test_count_always_zero(self):
        assert aggregate("count", [], SET_CONVENTIONS) == 0
        assert aggregate("count", [], ZERO) == 0


class TestDistinctVariants:
    def test_sumdistinct(self):
        assert aggregate("sumdistinct", pairs([5, 5, 3]), SET_CONVENTIONS) == 8

    def test_countdistinct(self):
        assert aggregate("countdistinct", pairs([5, 5, 3]), SET_CONVENTIONS) == 2

    def test_avgdistinct(self):
        assert aggregate("avgdistinct", pairs([4, 4, 8]), SET_CONVENTIONS) == 6

    def test_distinct_ignores_multiplicity(self):
        assert aggregate("sumdistinct", [(5, 10)], SET_CONVENTIONS) == 5


class TestErrors:
    def test_unknown_aggregate(self):
        with pytest.raises(EvaluationError):
            aggregate("median", pairs([1]), SET_CONVENTIONS)


class TestProperties:
    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_sum_matches_python(self, values):
        assert aggregate("sum", pairs(values), SET_CONVENTIONS) == sum(values)

    @given(st.lists(st.integers(min_value=-100, max_value=100), min_size=1))
    def test_min_le_avg_le_max(self, values):
        low = aggregate("min", pairs(values), SET_CONVENTIONS)
        mid = aggregate("avg", pairs(values), SET_CONVENTIONS)
        high = aggregate("max", pairs(values), SET_CONVENTIONS)
        assert low <= mid <= high

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1))
    def test_distinct_sum_le_sum(self, values):
        assert aggregate("sumdistinct", pairs(values), SET_CONVENTIONS) <= aggregate(
            "sum", pairs(values), SET_CONVENTIONS
        )

    @given(st.lists(st.integers(min_value=-50, max_value=50)))
    def test_count_is_length_of_non_null(self, values):
        assert aggregate("count", pairs(values), SET_CONVENTIONS) == len(values)
