"""Abstract relations: membership tests and functional completion."""

import pytest

from repro.core.parser import parse
from repro.data import Database
from repro.engine import Evaluator, evaluate
from repro.engine.abstract import AbstractSource
from repro.errors import EvaluationError

from ..conftest import rows_as_tuples


class TestMembershipAccess:
    def test_unique_set_query(self, likes_db):
        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ ¬(∃l2 ∈ L, s1 ∈ Sub, s2 ∈ Sub"
            "[l2.d <> l1.d ∧ s1.l = l1.d ∧ s1.r = l2.d ∧ "
            "s2.l = l2.d ∧ s2.r = l1.d])]}"
        )
        assert rows_as_tuples(evaluate(program, likes_db)) == [("bob",)]

    def test_matches_monolithic_form(self, likes_db):
        from repro.workloads import paper_examples

        modular = parse(paper_examples.ARC["eq23_24"])
        monolithic = paper_examples.arc("eq22")
        assert evaluate(modular, likes_db).set_equal(
            evaluate(monolithic, likes_db)
        )

    def test_direct_membership_calls(self, likes_db):
        definition = parse(
            "{Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])}"
        )
        evaluator = Evaluator(likes_db)
        source = AbstractSource(definition, evaluator)
        # bob likes {ipa} ⊆ alice's {ipa, stout}
        assert source.complete({"l": "bob", "r": "alice"}) == [
            {"l": "bob", "r": "alice"}
        ]
        # alice's {ipa, stout} ⊄ bob's {ipa}
        assert source.complete({"l": "alice", "r": "bob"}) == []

    def test_underdetermined_raises(self, likes_db):
        definition = parse(
            "{Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])}"
        )
        evaluator = Evaluator(likes_db)
        source = AbstractSource(definition, evaluator)
        assert not source.resolvable({"l": "bob"})
        with pytest.raises(EvaluationError):
            source.complete({"l": "bob"})


class TestFunctionalAccess:
    def test_minus_style_definition(self):
        """A comprehension-defined Minus (Example 1) derives its output."""
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (2, 3)])
        program = parse(
            "MyMinus := {MyMinus(l, r, o) | MyMinus.o = MyMinus.l - MyMinus.r} ;\n"
            "{Q(A, o) | ∃x ∈ R, f ∈ MyMinus[Q.A = x.A ∧ Q.o = f.o ∧ "
            "f.l = x.B ∧ f.r = 1]}"
        )
        assert rows_as_tuples(evaluate(program, db)) == [(1, 9), (2, 2)]

    def test_functional_membership_check(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        definition = parse(
            "{MyMinus(l, r, o) | MyMinus.o = MyMinus.l - MyMinus.r}"
        )
        evaluator = Evaluator(db)
        source = AbstractSource(definition, evaluator)
        assert source.complete({"l": 5, "r": 3, "o": 2})
        assert source.complete({"l": 5, "r": 3, "o": 99}) == []
        assert source.complete({"l": 5, "r": 3}) == [{"l": 5, "r": 3, "o": 2}]

    def test_resolvable_reports_derivability(self):
        db = Database()
        definition = parse(
            "{MyMinus(l, r, o) | MyMinus.o = MyMinus.l - MyMinus.r}"
        )
        source = AbstractSource(definition, Evaluator(db))
        assert source.resolvable({"l": 1, "r": 2})
        assert not source.resolvable({"o": 1})
