"""The count bug (Section 3.2): versions 1/2/3 on the paper's instance.

These are the paper's central executable claims: on R(9, 0) with S = ∅,
version 1 (correlated scalar test) returns {9}, version 2 (naive
decorrelation) returns {}, and version 3 (left-join decorrelation)
returns {9}.
"""

import pytest

from repro.core.conventions import SQL_CONVENTIONS, SET_CONVENTIONS
from repro.core.parser import parse
from repro.engine import evaluate
from repro.workloads import instances, paper_examples

from ..conftest import rows_as_tuples


@pytest.fixture
def versions():
    return (
        paper_examples.arc("eq27"),
        paper_examples.arc("eq28"),
        paper_examples.arc("eq29"),
    )


class TestPaperInstance:
    def test_v1_returns_nine(self, count_bug_db, versions):
        assert rows_as_tuples(evaluate(versions[0], count_bug_db)) == [(9,)]

    def test_v2_returns_empty(self, count_bug_db, versions):
        assert evaluate(versions[1], count_bug_db).is_empty()

    def test_v3_returns_nine(self, count_bug_db, versions):
        assert rows_as_tuples(evaluate(versions[2], count_bug_db)) == [(9,)]

    def test_same_under_bag_conventions(self, count_bug_db, versions):
        v1, v2, v3 = versions
        assert rows_as_tuples(evaluate(v1, count_bug_db, SQL_CONVENTIONS)) == [(9,)]
        assert evaluate(v2, count_bug_db, SQL_CONVENTIONS).is_empty()
        assert rows_as_tuples(evaluate(v3, count_bug_db, SQL_CONVENTIONS)) == [(9,)]


class TestPopulatedInstance:
    def test_v1_v3_always_agree(self, versions):
        db = instances.count_bug_populated()
        v1, _, v3 = versions
        assert evaluate(v1, db).set_equal(evaluate(v3, db))

    def test_v2_differs_exactly_on_empty_groups(self, versions):
        db = instances.count_bug_populated()
        v1, v2, _ = versions
        r1 = {row["id"] for row in evaluate(v1, db)}
        r2 = {row["id"] for row in evaluate(v2, db)}
        assert r2 <= r1
        for missing in r1 - r2:
            assert not [s for s in db["S"] if s["id"] == missing]

    def test_versions_agree_when_s_covers_all_ids(self, versions):
        from repro.data import Database

        db = Database()
        db.create("R", ("id", "q"), [(1, 2), (2, 0)])
        db.create("S", ("id", "d"), [(1, "a"), (1, "b"), (2, "c")])
        v1, v2, v3 = versions
        r1 = evaluate(v1, db)
        # id=2 has q=0 but count=1 -> excluded; id=1 has q=2=count -> included
        assert rows_as_tuples(r1) == [(1,)]
        assert r1.set_equal(evaluate(v2, db))
        assert r1.set_equal(evaluate(v3, db))


class TestViaSqlFrontend:
    """The same three behaviours via the paper's SQL texts (Fig. 21a-c)."""

    def test_sql_versions(self, count_bug_db):
        from repro.frontends.sql import to_arc

        v1 = to_arc(paper_examples.SQL["fig21a"], database=count_bug_db)
        v2 = to_arc(paper_examples.SQL["fig21b"], database=count_bug_db)
        v3 = to_arc(paper_examples.SQL["fig21c"], database=count_bug_db)
        assert rows_as_tuples(evaluate(v1, count_bug_db, SQL_CONVENTIONS)) == [(9,)]
        assert evaluate(v2, count_bug_db, SQL_CONVENTIONS).is_empty()
        assert rows_as_tuples(evaluate(v3, count_bug_db, SQL_CONVENTIONS)) == [(9,)]

    def test_sql_matches_arc_patterns(self, count_bug_db, versions):
        """The SQL translations are pattern-equal to the paper's ARC forms."""
        from repro.analysis import same_pattern
        from repro.frontends.sql import to_arc

        v1_sql = to_arc(paper_examples.SQL["fig21a"], database=count_bug_db)
        assert same_pattern(v1_sql, versions[0])
