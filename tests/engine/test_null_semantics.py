"""NULL handling: 3VL vs 2VL conventions, NOT IN, IS NULL (Section 2.10)."""

import pytest

from repro.core.conventions import NullComparison, SET_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL, Truth
from repro.engine import evaluate
from repro.workloads import instances

from ..conftest import rows_as_tuples

TWO_VL = SET_CONVENTIONS.with_(null_comparison=NullComparison.TWO_VALUED)


class TestNotIn:
    def test_not_in_with_null_is_empty(self):
        """Fig. 11: NOT IN returns nothing when S contains a NULL."""
        db = instances.not_in_instance(with_null=True)
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        assert evaluate(query, db).is_empty()

    def test_not_in_without_null(self):
        db = instances.not_in_instance(with_null=False)
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        assert rows_as_tuples(evaluate(query, db)) == [(2,), (3,)]

    def test_in_with_null_still_matches(self):
        db = instances.not_in_instance(with_null=True)
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[s.A = r.A]]}")
        assert rows_as_tuples(evaluate(query, db)) == [(1,)]

    def test_eq17_rewrite_matches_under_both_logics(self):
        db = instances.not_in_instance(with_null=True)
        rewritten = parse(
            "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ "
            "¬(∃s ∈ S[s.A = r.A ∨ s.A is null ∨ r.A is null])]}"
        )
        assert evaluate(rewritten, db, SET_CONVENTIONS).is_empty()
        assert evaluate(rewritten, db, TWO_VL).is_empty()


class TestThreeValuedPropagation:
    def test_comparison_with_null_filters_row(self):
        db = Database()
        db.create("R", ("A",), [(1,), (NULL,)])
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.A = 1]}")
        assert rows_as_tuples(evaluate(query, db)) == [(1,)]

    def test_negated_unknown_still_filters(self):
        db = Database()
        db.create("R", ("A",), [(NULL,)])
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(r.A = 1)]}")
        assert evaluate(query, db).is_empty()

    def test_exists_unknown(self):
        db = Database()
        db.create("R", ("A",), [(NULL,)])
        assert evaluate(parse("∃r ∈ R[r.A = 1]"), db) is Truth.UNKNOWN
        assert evaluate(parse("¬∃r ∈ R[r.A = 1]"), db) is Truth.UNKNOWN

    def test_or_rescues_unknown(self):
        db = Database()
        db.create("R", ("A", "B"), [(NULL, 1)])
        query = parse("{Q(B) | ∃r ∈ R[Q.B = r.B ∧ (r.A = 1 ∨ r.B = 1)]}")
        assert rows_as_tuples(evaluate(query, db)) == [(1,)]

    def test_two_valued_null_equality(self):
        db = Database()
        db.create("R", ("A",), [(NULL,), (1,)])
        db.create("S", ("A",), [(NULL,)])
        query = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.A = s.A]}")
        assert evaluate(query, db, SET_CONVENTIONS).is_empty()
        result = evaluate(query, db, TWO_VL)
        assert len(result) == 1  # NULL = NULL holds in 2VL


class TestIsNull:
    def test_is_null_predicate(self):
        db = Database()
        db.create("R", ("A",), [(1,), (NULL,)])
        query = parse("{Q(K) | ∃r ∈ R[Q.K = 1 ∧ r.A is null]}")
        assert len(evaluate(query, db)) == 1

    def test_is_not_null_predicate(self):
        db = Database()
        db.create("R", ("A",), [(1,), (NULL,)])
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.A is not null]}")
        assert rows_as_tuples(evaluate(query, db)) == [(1,)]

    def test_is_null_is_two_valued_even_in_3vl(self):
        db = Database()
        db.create("R", ("A",), [(NULL,)])
        assert evaluate(parse("∃r ∈ R[r.A is null]"), db) is Truth.TRUE


class TestNullArithmetic:
    def test_null_propagates_into_head(self):
        db = Database()
        db.create("R", ("A",), [(NULL,)])
        result = evaluate(parse("{Q(v) | ∃r ∈ R[Q.v = r.A + 1]}"), db)
        assert rows_as_tuples(result) == [(NULL,)]

    def test_aggregate_skips_null_rows(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 5), (1, NULL)])
        result = evaluate(
            parse("{Q(A, sm, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B) ∧ Q.ct = count(r.B)]}"),
            db,
        )
        assert rows_as_tuples(result) == [(1, 5, 1)]
