"""Unit tests for the worker-pool subsystem (no HTTP involved).

Covers the pieces ``repro serve`` composes: futures, the coalescer's
single-leader guarantee, session factories and private connections, the
per-worker session LRU (eviction closes SQLite connections), and the
pool's admission / drain state machine.
"""

import sqlite3
import threading
import time

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.backends.exec import sqlite_exec
from repro.core.conventions import SQL_CONVENTIONS
from repro.serve import (
    AdmissionError,
    Coalescer,
    SessionFactory,
    WorkerPool,
)
from repro.serve.pool import Future

QUERY = "{Q(x) | ∃p ∈ P[Q.x = p.x]}"


def _db(rows=((1,),)):
    db = repro.Database()
    db.create("P", ("x",), list(rows))
    return db


def _factory(catalogs=None, **options):
    catalogs = catalogs if catalogs is not None else {"default": _db()}
    return SessionFactory(
        catalogs, SQL_CONVENTIONS, options=EvalOptions(**options)
    )


@pytest.fixture(autouse=True)
def clean_cache():
    sqlite_exec.clear_catalog_cache()
    yield
    sqlite_exec.clear_catalog_cache()


class TestFuture:
    def test_result_roundtrip(self):
        future = Future()
        future.set_result(42)
        assert future.wait(1) == 42
        assert future.done()

    def test_error_reraises(self):
        future = Future()
        future.set_error(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            future.wait(1)

    def test_timeout(self):
        with pytest.raises(TimeoutError):
            Future().wait(0.01)


class TestCoalescer:
    def test_first_join_leads_followers_coalesce(self):
        coalescer = Coalescer()
        entry, leader = coalescer.join("k")
        assert leader
        same, follower_leads = coalescer.join("k")
        assert same is entry and not follower_leads
        assert coalescer.coalesced_total == 1
        coalescer.publish("k", "answer")
        assert entry.wait(1) == "answer"
        # The key left the map before followers woke: a new join leads.
        _, leads_again = coalescer.join("k")
        assert leads_again

    def test_exactly_one_leader_under_contention(self):
        coalescer = Coalescer()
        barrier = threading.Barrier(16)
        outcomes = []
        leaders = []
        lock = threading.Lock()

        def contend():
            barrier.wait()
            entry, leader = coalescer.join("hot")
            if leader:
                with lock:
                    leaders.append(threading.current_thread().name)
                time.sleep(0.01)  # let followers pile up on the entry
                coalescer.publish("hot", b"the-bytes")
                result = entry.outcome
            else:
                result = entry.wait(5)
            with lock:
                outcomes.append(result)

        threads = [threading.Thread(target=contend) for _ in range(16)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10)
        assert len(leaders) == 1
        assert outcomes == [b"the-bytes"] * 16
        assert coalescer.coalesced_total == 15
        assert coalescer.inflight == 0


class TestSessionFactory:
    def test_builds_private_sessions(self):
        factory = _factory(backend="sqlite")
        first, second = factory.build(), factory.build()
        assert first is not second
        assert first.private_connections and second.private_connections
        # Private connections: each session executes on its own handle.
        first.prepare(QUERY).run()
        second.prepare(QUERY).run()
        conn_a = next(iter(first._connections.values()))
        conn_b = next(iter(second._connections.values()))
        assert conn_a is not conn_b
        first.close()
        second.close()

    def test_unknown_catalog_raises(self):
        factory = _factory()
        with pytest.raises(LookupError, match="unknown catalog"):
            factory.build("nope")

    def test_missing_default_rejected(self):
        with pytest.raises(LookupError, match="default"):
            SessionFactory({"other": _db()}, SQL_CONVENTIONS)

    def test_from_session_shares_catalog_and_options(self):
        db = _db()
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        factory = SessionFactory.from_session(
            session, catalogs={"alt": _db([(7,)])}
        )
        assert factory.catalogs["default"] is db
        assert factory.options is session.options
        assert factory.names() == ["alt", "default"]
        built = factory.build("alt")
        assert built.prepare(QUERY).run().sorted_rows()[0]["x"] == 7
        built.close()


class TestSessionClose:
    def test_close_closes_private_connections(self):
        session = Session(
            _db(), SQL_CONVENTIONS, options=EvalOptions(backend="sqlite"),
            private_connections=True,
        )
        session.prepare(QUERY).run()
        assert session.catalog_loads == 1
        conn = next(iter(session._connections.values()))
        session.close()
        assert not session._connections
        with pytest.raises(sqlite3.ProgrammingError):
            conn.execute("select 1")

    def test_private_reuse_counts_hits(self):
        session = Session(
            _db(), SQL_CONVENTIONS, options=EvalOptions(backend="sqlite"),
            private_connections=True,
        )
        prepared = session.prepare(QUERY)
        prepared.run()
        prepared.run()
        assert session.catalog_loads == 1
        assert session.catalog_hits == 1
        session.close()

    def test_shared_cache_untouched_by_private_sessions(self):
        before = dict(sqlite_exec.stats)
        session = Session(
            _db(), SQL_CONVENTIONS, options=EvalOptions(backend="sqlite"),
            private_connections=True,
        )
        session.prepare(QUERY).run()
        session.close()
        assert len(sqlite_exec._connections) == 0
        assert sqlite_exec.stats["hits"] == before["hits"]


class TestWorkerPool:
    def test_jobs_execute_and_complete(self):
        pool = WorkerPool(_factory(backend="sqlite"), workers=2)
        try:
            futures = [
                pool.submit(
                    lambda worker: worker.session_for()
                    .prepare(QUERY).run().sorted_rows()
                )
                for _ in range(8)
            ]
            for future in futures:
                rows = future.wait(10)
                assert [row["x"] for row in rows] == [1]
            assert pool.jobs_completed == 8
        finally:
            pool.drain()

    def test_full_queue_answers_429(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=1)
        try:
            release = threading.Event()
            blocker = pool.submit(lambda worker: release.wait(10))
            # Wait for the worker to pick the blocker up, then fill the
            # queue's single slot.
            deadline = time.monotonic() + 5
            while pool.busy < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            queued = pool.submit(lambda worker: "queued")
            with pytest.raises(AdmissionError) as info:
                pool.submit(lambda worker: "refused")
            assert info.value.status == 429
            assert info.value.retriable
            release.set()
            assert blocker.wait(10) is True
            assert queued.wait(10) == "queued"
        finally:
            pool.drain()

    def test_drain_finishes_queued_jobs_then_refuses(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        release = threading.Event()
        blocker = pool.submit(lambda worker: release.wait(10))
        queued = pool.submit(lambda worker: "finished")
        drainer = threading.Thread(target=pool.drain)
        deadline = time.monotonic() + 5
        while pool.busy < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        drainer.start()
        deadline = time.monotonic() + 5
        while not pool.draining and time.monotonic() < deadline:
            time.sleep(0.005)
        # Draining: new work is refused as 503 (not retriable) ...
        with pytest.raises(AdmissionError) as info:
            pool.submit(lambda worker: "late")
        assert info.value.status == 503
        assert not info.value.retriable
        # ... but already-admitted work completes before workers stop.
        release.set()
        drainer.join(timeout=10)
        assert not drainer.is_alive()
        assert blocker.wait(1) is True
        assert queued.wait(1) == "finished"
        pool.drain()  # idempotent

    def test_worker_error_propagates_to_future(self):
        pool = WorkerPool(_factory(), workers=1)
        try:
            def explode(worker):
                raise RuntimeError("job failed")

            future = pool.submit(explode)
            with pytest.raises(RuntimeError, match="job failed"):
                future.wait(10)
            # The worker survives its job's exception.
            assert pool.submit(lambda worker: "alive").wait(10) == "alive"
        finally:
            pool.drain()

    def test_session_lru_evicts_and_closes_connections(self):
        catalogs = {
            "default": _db([(1,)]),
            "beta": _db([(2,)]),
            "gamma": _db([(3,)]),
        }
        pool = WorkerPool(
            _factory(catalogs, backend="sqlite"), workers=1, session_limit=2
        )
        try:
            def run_on(catalog):
                def job(worker):
                    session = worker.session_for(catalog)
                    rows = session.prepare(QUERY).run().sorted_rows()
                    return session, next(iter(session._connections.values())), rows

                return pool.submit(job).wait(10)

            session_a, conn_a, rows_a = run_on("default")
            run_on("beta")
            run_on("gamma")  # evicts "default" (limit 2)
            assert [row["x"] for row in rows_a] == [1]
            assert pool.sessions_evicted == 1
            assert not session_a._connections
            with pytest.raises(sqlite3.ProgrammingError):
                conn_a.execute("select 1")
            # Re-requesting the evicted catalog rebuilds it correctly.
            _, _, rows_again = run_on("default")
            assert [row["x"] for row in rows_again] == [1]
            assert pool.sessions_evicted == 2
        finally:
            pool.drain()

    def test_adopted_session_serves_worker_zero(self):
        db = _db()
        session = Session(db, SQL_CONVENTIONS, options=EvalOptions())
        pool = WorkerPool(
            SessionFactory.from_session(session), workers=1, adopt=session
        )
        try:
            got = pool.submit(lambda worker: worker.session_for()).wait(10)
            assert got is session
        finally:
            pool.drain()

    def test_submit_supervision_kwargs_default_to_the_old_behavior(self):
        """``timeout_ms`` / ``fingerprint`` / ``cancel`` are all optional;
        a bare ``submit(fn)`` behaves exactly as before PR 10 — no
        quarantine check, no shedding, hard cap at the pool default."""
        pool = WorkerPool(_factory(), workers=1, queue_depth=4)
        try:
            assert pool.submit(lambda worker: "plain").wait(10) == "plain"
            assert pool.shed_total == 0
            assert len(pool.quarantine) == 0
            # A soft deadline scales the hard cap by the backstop factor.
            from repro.serve.pool import (
                DEFAULT_HARD_TIMEOUT_MS,
                HARD_TIMEOUT_FACTOR,
            )

            assert pool._hard_ms(None) == DEFAULT_HARD_TIMEOUT_MS
            assert pool._hard_ms(250) == 250 * HARD_TIMEOUT_FACTOR
        finally:
            pool.drain()

    def test_explicit_hard_timeout_overrides_the_factor(self):
        pool = WorkerPool(
            _factory(), workers=1, queue_depth=4, hard_timeout_ms=123
        )
        try:
            assert pool._hard_ms(None) == 123
            assert pool._hard_ms(5000) == 123
        finally:
            pool.drain()

    def test_service_ewma_tracks_completed_jobs(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=4)
        try:
            assert pool.service_ewma_s == 0.0
            pool.submit(lambda worker: time.sleep(0.01)).wait(10)
            assert pool.service_ewma_s > 0.0
            assert pool.snapshot()["service_ewma_ms"] > 0.0
        finally:
            pool.drain()


class TestCoalescerErrorOutcomes:
    def test_error_outcome_fans_out_to_followers_verbatim(self):
        """The coalescer stores outcomes opaquely — a leader publishing a
        typed *error* resolves followers with that same error object, the
        contract the serving layer's publish-or-fail backstop relies on."""
        coalescer = Coalescer()
        entry, leader = coalescer.join("key")
        assert leader
        follower_entry, follower_leader = coalescer.join("key")
        assert not follower_leader
        sentinel_error = {"status": 500, "error_type": "WorkerCrash"}
        coalescer.publish("key", sentinel_error)
        assert follower_entry.wait(1) is sentinel_error
        assert coalescer.inflight == 0
