"""Self-healing pool acceptance tests: supervision, quarantine, watchdog.

The scenarios pinned here are PR 10's acceptance criteria:

* a worker killed mid-job (``pool.worker`` failpoint) is respawned, the
  caller gets a typed 500 (``WorkerCrash``), ``workers_respawned``
  appears in ``/stats`` and ``arc_worker_respawns_total`` in
  ``/metrics``, and subsequent requests are answered;
* a request fingerprint that kills workers twice is quarantined: the
  third attempt answers a typed **422** (``PoisonQuery``) with
  ``Retry-After`` while unrelated queries keep succeeding;
* an unbounded recursive query with **no client deadline** is
  interrupted by the watchdog within 2× the hard wall cap, on all three
  backends;
* a coalescing leader that dies before publishing still resolves its
  followers with a typed 500 (publish-or-fail);
* execution counters survive a crash: the dead worker's totals move to
  the retired ledger, so ``/stats`` aggregates never go backwards.

CI's chaos matrix also runs this module under ``REPRO_FAILPOINTS``
(including ``pool.worker=...`` specs); every test arms its own
failpoints deterministically and restores the environment's arming on
exit, and one env-invariant test exercises whatever the matrix armed.
"""

import http.client
import json
import threading
import time

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.api.serve import make_server
from repro.backends.exec import reset_breakers, sqlite_exec
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.errors import PoisonQuery, WorkerCrash
from repro.serve import Quarantine, SessionFactory, WorkerPool, poison_fingerprint
from repro.util import failpoints

SIMPLE = "{Q(x) | ∃p ∈ P[Q.x = p.x]}"
#: Diverging recursion — nothing but a deadline (or the watchdog) stops it.
RUNAWAY = "{T(x) | ∃p ∈ P[T.x = p.x] ∨ ∃t ∈ T[T.x = t.x + 1]}"


@pytest.fixture(autouse=True)
def clean_state():
    failpoints.reset()
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    failpoints.reset()
    reset_breakers()
    # Restore whatever REPRO_FAILPOINTS armed: the CI chaos matrix runs
    # this module with the variable set, and later modules (and the env
    # assertion in tests/api/test_chaos_env.py) expect it armed.
    failpoints.load_env()


def _db(rows=((1,),)):
    db = repro.Database()
    db.create("P", ("x",), list(rows))
    return db


def _serve(conventions=SET_CONVENTIONS, options=None, **kwargs):
    session = Session(_db(), conventions, options=options or EvalOptions())
    server = make_server(session, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(server, body, timeout=30):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST", "/query", json.dumps(body).encode(),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read(), dict(response.headers)
    finally:
        conn.close()


def _get(server, path):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _wait_until(predicate, timeout=5):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


def _metric_value(server, name):
    """Scrape one unlabelled sample from ``GET /metrics``."""
    status, body = _get(server, "/metrics")
    assert status == 200
    for line in body.decode().splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    raise AssertionError(f"{name} not found in /metrics output")


# ---------------------------------------------------------------------------
# Quarantine unit behavior
# ---------------------------------------------------------------------------


class TestQuarantine:
    def test_threshold_then_blocked_then_ttl_release(self):
        now = [0.0]
        q = Quarantine(threshold=2, ttl_s=10.0, clock=lambda: now[0])
        assert q.note_kill("fp") is False
        assert q.blocked("fp") is None  # one kill is noise, not poison
        assert q.note_kill("fp") is True  # second kill quarantines
        assert q.blocked("fp") == pytest.approx(10.0)
        now[0] = 9.0
        assert q.blocked("fp") == pytest.approx(1.0)
        now[0] = 10.5
        assert q.blocked("fp") is None  # lazy release at expiry
        assert q.released_total == 1
        # Clean slate: the released fingerprint must re-offend twice.
        assert q.note_kill("fp") is False
        assert q.blocked("fp") is None

    def test_note_kill_does_not_requarantine_while_blocked(self):
        q = Quarantine(threshold=1, ttl_s=60.0, clock=lambda: 0.0)
        assert q.note_kill("fp") is True
        assert q.note_kill("fp") is False  # already blocked: not a new event
        assert q.quarantined_total == 1

    def test_snapshot_shape(self):
        now = [0.0]
        q = Quarantine(threshold=1, ttl_s=30.0, clock=lambda: now[0])
        q.note_kill("aa")
        snap = q.snapshot()
        assert snap["size"] == 1
        assert snap["threshold"] == 1
        assert snap["quarantined_total"] == 1
        assert snap["entries"][0]["fingerprint"] == "aa"
        assert snap["entries"][0]["remaining_s"] == pytest.approx(30.0)
        now[0] = 31.0
        assert q.snapshot()["size"] == 0  # snapshot releases the expired

    def test_fingerprint_excludes_budget_fields(self):
        a = poison_fingerprint("default", SIMPLE, "arc", None)
        b = poison_fingerprint("default", SIMPLE, "arc", None)
        c = poison_fingerprint("default", SIMPLE, "arc", "sqlite")
        assert a == b
        assert a != c


# ---------------------------------------------------------------------------
# Pool-level supervision
# ---------------------------------------------------------------------------


def _factory():
    return SessionFactory({"default": _db()}, SET_CONVENTIONS)


class TestPoolSupervision:
    def test_crashed_worker_is_respawned_and_caller_gets_typed_error(self):
        pool = WorkerPool(_factory(), workers=2, queue_depth=8)
        try:
            failpoints.activate("pool.worker", "boom*1")
            future = pool.submit(lambda worker: 1)
            with pytest.raises(WorkerCrash) as excinfo:
                future.wait(10)
            assert isinstance(excinfo.value.__cause__, RuntimeError)
            assert _wait_until(lambda: pool.workers_respawned == 1)
            # Full capacity survives: both workers still execute.
            futures = [pool.submit(lambda worker: worker.index) for _ in range(4)]
            assert all(f.wait(10) in (0, 1) for f in futures)
            snap = pool.snapshot()
            assert snap["workers_respawned"] == 1
            # The crashed job never counted as completed.
            assert snap["jobs_completed"] == 4
        finally:
            pool.drain()

    def test_two_kills_quarantine_the_fingerprint(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        try:
            failpoints.activate("pool.worker", "boom*2")
            for _ in range(2):
                with pytest.raises(WorkerCrash):
                    pool.submit(lambda worker: 1, fingerprint="fp").wait(10)
                assert _wait_until(
                    lambda: not pool.queue.qsize() and pool.busy == 0
                )
            with pytest.raises(PoisonQuery) as excinfo:
                pool.submit(lambda worker: 1, fingerprint="fp")
            assert excinfo.value.retry_after_s >= 1
            # Unrelated fingerprints are admitted and succeed.
            assert pool.submit(lambda worker: "ok", fingerprint="other").wait(10) == "ok"
            assert len(pool.quarantine) == 1
        finally:
            pool.drain()

    def test_retired_stats_survive_the_crash(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        try:
            def run_query(worker):
                session = worker.session_for(None)
                session.prepare(SIMPLE).run()
                return dict(session.stats.as_dict())

            live = pool.submit(run_query).wait(10)
            assert any(v > 0 for v in live.values())
            failpoints.activate("pool.worker", "boom*1")
            with pytest.raises(WorkerCrash):
                pool.submit(lambda worker: 1).wait(10)
            retired, _cache = pool.retired_stats()
            for name, value in live.items():
                assert retired.get(name, 0) >= value
        finally:
            pool.drain()

    def test_drain_completes_after_a_mid_drain_crash(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        failpoints.activate("pool.worker", "boom*1")
        with pytest.raises(WorkerCrash):
            pool.submit(lambda worker: 1).wait(10)
        assert _wait_until(lambda: pool.workers_respawned == 1)
        pool.drain()  # must join the replacement thread, not the dead one
        assert pool.draining


class TestWatchdogPoolLevel:
    def test_deadline_less_job_is_cancelled_at_the_hard_cap(self):
        pool = WorkerPool(
            _factory(), workers=1, queue_depth=8, hard_timeout_ms=200,
        )
        try:
            def stubborn(worker):
                # Poll the job's cancel token like a cooperative engine.
                job = worker.current
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if job.cancel.cancelled:
                        return "cancelled"
                    time.sleep(0.005)
                return "never cancelled"

            started = time.perf_counter()
            result = pool.submit(stubborn).wait(10)  # no timeout_ms at all
            elapsed = time.perf_counter() - started
            assert result == "cancelled"
            assert elapsed < 2 * 0.2 + 1.0
            assert pool.watchdog_cancels == 1
        finally:
            pool.drain()


class TestShedding:
    def test_request_whose_budget_the_queue_would_eat_is_shed(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        try:
            release = threading.Event()
            blocker = pool.submit(lambda worker: release.wait(30))
            assert _wait_until(lambda: pool.busy == 1)
            filler = pool.submit(lambda worker: None)  # queued behind it
            pool.service_ewma_s = 10.0  # white box: 1 queued job -> 10 s wait
            from repro.serve import AdmissionError

            with pytest.raises(AdmissionError) as excinfo:
                pool.submit(lambda worker: None, timeout_ms=100)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s == 10
            assert pool.shed_total == 1
            # Deadline-less requests are not shed without a threshold.
            accepted = pool.submit(lambda worker: "ran")
            release.set()
            blocker.wait(10)
            filler.wait(10)
            assert accepted.wait(10) == "ran"
        finally:
            pool.drain()

    def test_shed_threshold_applies_to_deadline_less_requests(self):
        pool = WorkerPool(
            _factory(), workers=1, queue_depth=8, shed_threshold_ms=500,
        )
        try:
            release = threading.Event()
            blocker = pool.submit(lambda worker: release.wait(30))
            assert _wait_until(lambda: pool.busy == 1)
            filler = pool.submit(lambda worker: None)
            pool.service_ewma_s = 10.0
            from repro.serve import AdmissionError

            with pytest.raises(AdmissionError):
                pool.submit(lambda worker: None)  # no deadline, still shed
            assert pool.shed_total == 1
            release.set()
            blocker.wait(10)
            filler.wait(10)
        finally:
            pool.drain()

    def test_empty_queue_is_never_shed(self):
        pool = WorkerPool(_factory(), workers=1, queue_depth=8)
        try:
            pool.service_ewma_s = 100.0
            assert pool.submit(lambda worker: "ok", timeout_ms=1).wait(10) == "ok"
            assert pool.shed_total == 0
        finally:
            pool.drain()


# ---------------------------------------------------------------------------
# HTTP-level self-healing
# ---------------------------------------------------------------------------


class TestHTTPSelfHealing:
    def test_worker_death_respawn_and_metrics(self):
        """The headline scenario: one injected worker death, a typed 500,
        ``workers_respawned == 1`` in /stats, the respawn counter scraped
        from /metrics, and the server answering afterwards."""
        server, thread = _serve(workers=2, queue_depth=8)
        try:
            assert _metric_value(server, "arc_worker_respawns_total") == 0
            failpoints.activate("pool.worker", "boom*1")
            status, body, _ = _post(server, {"query": SIMPLE})
            assert status == 500
            payload = json.loads(body)
            assert payload["error_type"] == "WorkerCrash"
            assert _wait_until(
                lambda: server.pool.workers_respawned == 1
            )
            status, body = _get(server, "/stats")
            stats = json.loads(body)
            assert stats["pool"]["workers_respawned"] == 1
            assert stats["pool"]["workers"] == 2
            assert _metric_value(server, "arc_worker_respawns_total") == 1
            # The respawned pool still answers (and at full capacity).
            status, body, _ = _post(server, {"query": SIMPLE})
            assert status == 200
        finally:
            _stop(server, thread)

    def test_poison_query_answers_422_while_others_succeed(self):
        server, thread = _serve(workers=1, queue_depth=8)
        try:
            failpoints.activate("pool.worker", "boom*2")
            for _ in range(2):
                status, body, _ = _post(server, {"query": RUNAWAY, "timeout_ms": 5000})
                assert status == 500
                assert json.loads(body)["error_type"] == "WorkerCrash"
                assert _wait_until(lambda: server.pool.busy == 0)
            status, body, headers = _post(
                server, {"query": RUNAWAY, "timeout_ms": 5000}
            )
            assert status == 422
            payload = json.loads(body)
            assert payload["error_type"] == "PoisonQuery"
            assert int(headers["Retry-After"]) >= 1
            # A different query is unaffected by the quarantine.
            status, _, _ = _post(server, {"query": SIMPLE})
            assert status == 200
            status, body = _get(server, "/stats")
            quarantine = json.loads(body)["quarantine"]
            assert quarantine["size"] == 1
            assert quarantine["quarantined_total"] == 1
            assert quarantine["entries"][0]["remaining_s"] > 0
            assert _metric_value(server, "arc_quarantined_total") == 1
            assert _metric_value(server, "arc_quarantine_size") == 1
        finally:
            _stop(server, thread)

    def test_leader_death_resolves_the_flight_with_a_typed_500(self):
        """Publish-or-fail: a leader dying between submitting its job and
        collecting the outcome (the ``pool.leader`` failpoint) still
        publishes — a typed 500, not an abandoned flight that would stall
        any follower for the full job-wait backstop."""
        server, thread = _serve(workers=1, queue_depth=8)
        try:
            failpoints.activate("pool.leader", "boom*1")
            status, body, _ = _post(server, {"query": SIMPLE})
            assert status == 500
            assert json.loads(body)["error_type"] == "RuntimeError"
            # The flight resolved and left the in-flight map: the next
            # identical request starts fresh and succeeds.
            assert server.coalescer.inflight == 0
            status, _, _ = _post(server, {"query": SIMPLE})
            assert status == 200
        finally:
            _stop(server, thread)

    def test_worker_crash_fans_typed_500_to_followers(self):
        server, thread = _serve(workers=1, queue_depth=8)
        try:
            release = threading.Event()
            blocker = server.pool.submit(lambda worker: release.wait(30))
            assert _wait_until(lambda: server.pool.busy == 1)
            failpoints.activate("pool.worker", "boom*1")
            results = []
            lock = threading.Lock()

            def fire():
                result = _post(server, {"query": SIMPLE})
                with lock:
                    results.append(result)

            posters = [threading.Thread(target=fire) for _ in range(3)]
            for poster in posters:
                poster.start()
            assert _wait_until(lambda: server.coalescer.coalesced_total >= 2)
            release.set()
            blocker.wait(10)
            for poster in posters:
                poster.join(timeout=15)
            assert [status for status, _, _ in results] == [500] * 3
            assert {
                json.loads(body)["error_type"] for _, body, _ in results
            } == {"WorkerCrash"}
        finally:
            _stop(server, thread)

    def test_aggregate_stats_survive_a_respawn(self):
        server, thread = _serve(workers=1, queue_depth=8)
        try:
            status, _, _ = _post(server, {"query": SIMPLE})
            assert status == 200
            before, *_cache = server.aggregate_stats()
            assert any(v > 0 for v in before.values())
            failpoints.activate("pool.worker", "boom*1")
            status, _, _ = _post(server, {"query": SIMPLE})
            assert status == 500
            assert _wait_until(lambda: server.pool.workers_respawned == 1)
            after, *_cache = server.aggregate_stats()
            for name, value in before.items():
                assert after.get(name, 0) >= value, name
        finally:
            _stop(server, thread)


class TestWatchdogHTTP:
    @pytest.mark.parametrize("backend", ["reference", "planner", "sqlite"])
    def test_runaway_query_without_deadline_is_interrupted(self, backend):
        """No client budget at all — the hard wall cap still frees the
        worker, on every backend."""
        hard_ms = 1000
        server, thread = _serve(
            conventions=SQL_CONVENTIONS, workers=1, queue_depth=8,
            hard_timeout_ms=hard_ms,
        )
        try:
            started = time.perf_counter()
            status, body, _ = _post(
                server, {"query": RUNAWAY, "backend": backend}, timeout=60
            )
            elapsed = time.perf_counter() - started
            assert status == 408
            payload = json.loads(body)
            assert payload["error_type"] == "QueryTimeout"
            assert "watchdog" in payload["error"]
            assert elapsed < 2 * hard_ms / 1000.0
            # The worker survived the interruption.
            status, _, _ = _post(server, {"query": SIMPLE})
            assert status == 200
            status, body = _get(server, "/stats")
            assert json.loads(body)["pool"]["watchdog_cancels"] >= 1
            assert _metric_value(server, "arc_watchdog_cancels_total") >= 1
        finally:
            _stop(server, thread)


class TestChaosEnv:
    def test_serving_survives_whatever_the_environment_armed(self):
        """The chaos-matrix entry: re-arm ``REPRO_FAILPOINTS`` and serve.

        Whatever the environment injects (including ``pool.worker``
        kill specs), every response is a typed status — 200, 500, 422, or
        408 — and once any counted spec exhausts, the server answers 200
        again.  Distinct queries per request keep the poison quarantine
        out of the way of counted worker-kill specs.
        """
        failpoints.load_env()
        armed = dict(failpoints.active())
        server, thread = _serve(workers=2, queue_depth=8)
        try:
            statuses = []
            for i in range(6):
                query = f"{{Q(x) | ∃p ∈ P[Q.x = p.x + {i}]}}"
                status, body, _ = _post(server, {"query": query, "timeout_ms": 10000})
                statuses.append(status)
                assert status in (200, 400, 408, 422, 500), body
                _wait_until(lambda: server.pool.busy == 0)
            assert statuses[-1] == 200, (armed, statuses)
            if any(site == "pool.worker" for site in armed):
                assert server.pool.workers_respawned >= 1
        finally:
            _stop(server, thread)
