"""Concurrent hammer tests for state the worker pool shares.

The thread-safety audit for concurrent serving: every shared structure —
metrics counters/histograms, registry get-or-create, circuit breakers,
the SQLite fingerprint-cache — is hit from many threads at once and must
come out exact (no lost increments) and uncorrupted.  Relation warm
caches (``index_on``, ``derived_put``) need no lock: they publish fully
built values through single atomic dict stores, and concurrent readers
see either nothing (rebuild) or the complete value — that CAS-safe path
is documented in ``data/relation.py`` and exercised end-to-end by the
HTTP concurrency tests.
"""

import threading
import time

import pytest

import repro
from repro.backends.exec import breaker_for, reset_breakers, sqlite_exec
from repro.backends.exec.registry import CircuitBreaker
from repro.obs import MetricsRegistry
from repro.serve import WorkerPool
from repro.serve.pool import SessionFactory
from repro.core.conventions import SQL_CONVENTIONS

THREADS = 8
ROUNDS = 5000


def _hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def wrapped(index):
        barrier.wait()
        worker(index)

    pool = [
        threading.Thread(target=wrapped, args=(index,))
        for index in range(threads)
    ]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join(timeout=30)
        assert not thread.is_alive()


class TestMetricsUnderContention:
    def test_counter_loses_no_increments(self):
        counter = MetricsRegistry().counter("hits")
        _hammer(lambda index: [counter.inc() for _ in range(ROUNDS)])
        assert counter.value() == THREADS * ROUNDS

    def test_labelled_counter_is_exact_per_label(self):
        counter = MetricsRegistry().counter("hits", labels=("who",))
        _hammer(
            lambda index: [
                counter.inc(who=str(index % 2)) for _ in range(ROUNDS)
            ]
        )
        total = counter.value(who="0") + counter.value(who="1")
        assert total == THREADS * ROUNDS

    def test_histogram_count_and_sum_are_exact(self):
        histogram = MetricsRegistry().histogram("lat")
        _hammer(lambda index: [histogram.observe(0.001) for _ in range(ROUNDS)])
        assert histogram.count() == THREADS * ROUNDS
        assert histogram.sum() == pytest.approx(THREADS * ROUNDS * 0.001)
        # Every observation landed in exactly one bucket.
        ((_, cumulative, _, total),) = list(histogram.samples())
        assert cumulative[-1] == total == THREADS * ROUNDS

    def test_registry_get_or_create_race_yields_one_metric(self):
        registry = MetricsRegistry()
        metrics = []
        lock = threading.Lock()

        def register_and_count(index):
            counter = registry.counter("shared")
            with lock:
                metrics.append(counter)
            for _ in range(1000):
                counter.inc()

        _hammer(register_and_count)
        assert len({id(metric) for metric in metrics}) == 1
        assert registry.get("shared").value() == THREADS * 1000

    def test_scrape_during_writes_never_sees_torn_state(self):
        histogram = MetricsRegistry().histogram("lat")
        stop = threading.Event()
        torn = []

        def scrape():
            while not stop.is_set():
                for _, cumulative, _, total in histogram.samples():
                    # Cumulative bucket counts must always sum to count.
                    if cumulative[-1] != total:
                        torn.append((cumulative[-1], total))

        reader = threading.Thread(target=scrape)
        reader.start()
        _hammer(lambda index: [histogram.observe(0.01) for _ in range(ROUNDS)])
        stop.set()
        reader.join(timeout=10)
        assert torn == []


class TestBreakerUnderContention:
    def test_failure_counts_are_exact_below_threshold(self):
        breaker = CircuitBreaker("b", threshold=10**9)
        _hammer(lambda index: [breaker.record_failure() for _ in range(ROUNDS)])
        assert breaker.failures == THREADS * ROUNDS
        assert breaker.trips == 0
        assert breaker.state == "closed"

    def test_exactly_one_trip_at_the_threshold(self):
        breaker = CircuitBreaker("b", threshold=THREADS * ROUNDS)
        tripped = []
        lock = threading.Lock()

        def fail(index):
            for _ in range(ROUNDS):
                if breaker.record_failure():
                    with lock:
                        tripped.append(index)

        _hammer(fail)
        assert len(tripped) == 1
        assert breaker.trips == 1
        assert breaker.state == "open"

    def test_mixed_transitions_stay_in_valid_states(self):
        breaker = CircuitBreaker("b", threshold=3, cooldown_s=0.0)

        def churn(index):
            for round_no in range(500):
                if (index + round_no) % 3 == 0:
                    breaker.record_success()
                else:
                    breaker.record_failure()
                assert breaker.state in {"closed", "open", "half-open"}
                breaker.allow()

        _hammer(churn)
        assert breaker.state in {"closed", "open", "half-open"}

    def test_breaker_for_race_yields_one_instance(self):
        reset_breakers()
        try:
            seen = []
            lock = threading.Lock()

            def fetch(index):
                breaker = breaker_for("sqlite")
                with lock:
                    seen.append(breaker)

            _hammer(fetch)
            assert len({id(breaker) for breaker in seen}) == 1
        finally:
            reset_breakers()


class TestSqliteCacheUnderContention:
    def test_concurrent_connects_converge_on_one_cached_connection(self):
        sqlite_exec.clear_catalog_cache()
        db = repro.Database()
        db.create("P", ("x",), [(1,), (2,)])
        conns = []
        lock = threading.Lock()

        def connect(index):
            conn = sqlite_exec.connect_catalog(db)
            with lock:
                conns.append(conn)

        _hammer(connect)
        assert len({id(conn) for conn in conns}) == 1
        assert len(sqlite_exec._connections) == 1
        # The surviving connection works (redundant loaders were closed,
        # the published one was not).
        assert conns[0].execute("select count(*) from P").fetchone() == (2,)
        sqlite_exec.clear_catalog_cache()


class TestFailpointsUnderContention:
    def test_counted_spec_fires_exactly_n_times_across_threads(self):
        """``kind*N`` decrements under the module lock: THREADS workers
        hammering one armed site consume exactly N firings between them —
        a lost decrement would fire more, a double decrement fewer."""
        from repro.util import failpoints

        failpoints.reset()
        try:
            budget = 100
            failpoints.activate("pool.leader", f"boom*{budget}")
            fired = []
            lock = threading.Lock()

            def slam(index):
                count = 0
                for _ in range(ROUNDS // 10):
                    try:
                        failpoints.hit("pool.leader")
                    except RuntimeError:
                        count += 1
                with lock:
                    fired.append(count)

            _hammer(slam)
            assert sum(fired) == budget
            assert failpoints.active()["pool.leader"] == "boom*0"
            assert failpoints.hits["pool.leader"] == THREADS * (ROUNDS // 10)
        finally:
            failpoints.reset()
            failpoints.load_env()


class TestPoolAdmissionUnderContention:
    def test_no_future_is_lost_under_submit_storms(self):
        from repro.api import EvalOptions

        db = repro.Database()
        db.create("P", ("x",), [(1,)])
        factory = SessionFactory(
            {"default": db}, SQL_CONVENTIONS, options=EvalOptions()
        )
        pool = WorkerPool(factory, workers=4, queue_depth=16)
        accepted = []
        refused = []
        lock = threading.Lock()

        def storm(index):
            for _ in range(50):
                try:
                    future = pool.submit(lambda worker: time.sleep(0.0005))
                except Exception as exc:
                    with lock:
                        refused.append(exc)
                else:
                    with lock:
                        accepted.append(future)

        _hammer(storm)
        for future in accepted:
            future.wait(30)
        assert len(accepted) + len(refused) == THREADS * 50
        assert pool.jobs_completed == len(accepted)
        assert all(exc.status == 429 for exc in refused)
        pool.drain()
