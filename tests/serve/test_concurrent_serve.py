"""HTTP-level tests of the concurrent server: coalescing, scaling out,
admission control, multi-catalog serving, drain, and the pool surfaces.

These drive the real ``QueryServer`` over real sockets with real
threads — the properties pinned here (exactly-one execution under
coalescing, ≥2 workers under concurrent load, typed 429, a queued request
completing during shutdown) are the acceptance criteria of the
concurrent-serving subsystem.
"""

import http.client
import json
import threading
import time

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.api.serve import make_server
from repro.backends.exec import reset_breakers, sqlite_exec
from repro.core.conventions import SET_CONVENTIONS

SIMPLE = "{Q(x) | ∃p ∈ P[Q.x = p.x]}"
#: Diverging recursion — only a deadline stops it (keeps a worker busy
#: for exactly its ``timeout_ms``).
RUNAWAY = "{T(x) | ∃p ∈ P[T.x = p.x] ∨ ∃t ∈ T[T.x = t.x + 1]}"


@pytest.fixture(autouse=True)
def clean_state():
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    reset_breakers()


def _db(rows=((1,),)):
    db = repro.Database()
    db.create("P", ("x",), list(rows))
    return db


def _serve(**kwargs):
    session = Session(_db(), SET_CONVENTIONS, options=EvalOptions())
    server = make_server(session, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def _stop(server, thread):
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _post(server, body, timeout=30):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            "POST", "/query", json.dumps(body).encode(),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read(), dict(response.headers)
    finally:
        conn.close()


def _get(server, path):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _occupy_worker(server):
    """Block the (single) worker on an Event; returns (event, future)."""
    release = threading.Event()
    future = server.pool.submit(lambda worker: release.wait(30))
    deadline = time.monotonic() + 5
    while server.pool.busy < 1 and time.monotonic() < deadline:
        time.sleep(0.002)
    assert server.pool.busy == 1
    return release, future


def _wait_until(predicate, timeout=5):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.002)
    return False


class TestCoalescing:
    def test_n_inflight_identical_posts_execute_once(self):
        """Six concurrent identical POSTs → one execution, six
        byte-identical bodies, five X-Arc-Coalesced responses."""
        server, thread = _serve(workers=1, queue_depth=8)
        try:
            release, blocker = _occupy_worker(server)
            results = []
            lock = threading.Lock()

            def fire():
                result = _post(server, {"query": SIMPLE})
                with lock:
                    results.append(result)

            posters = [threading.Thread(target=fire) for _ in range(6)]
            for poster in posters:
                poster.start()
            # All six must be in flight (1 leader + 5 followers) before
            # the worker frees up — that is what makes them coalesce.
            assert _wait_until(
                lambda: server.coalescer.coalesced_total >= 5
            ), server.coalescer
            release.set()
            blocker.wait(10)
            for poster in posters:
                poster.join(timeout=10)
            assert len(results) == 6
            statuses = [status for status, _, _ in results]
            assert statuses == [200] * 6
            bodies = {body for _, body, _ in results}
            assert len(bodies) == 1  # byte-identical fan-out
            coalesced = [
                headers.get("X-Arc-Coalesced") for _, _, headers in results
            ]
            assert coalesced.count("1") == 5
            # Exactly one backend execution happened.
            assert server.queries_executed == 1
            assert server.coalescer.coalesced_total == 5
            # Each response still carries its own query id.
            ids = {headers["X-Arc-Query-Id"] for _, _, headers in results}
            assert len(ids) == 6
        finally:
            _stop(server, thread)

    def test_sequential_identical_posts_do_not_coalesce(self):
        server, thread = _serve(workers=1)
        try:
            first = _post(server, {"query": SIMPLE})
            second = _post(server, {"query": SIMPLE})
            assert first[0] == second[0] == 200
            assert first[1] == second[1]
            assert "X-Arc-Coalesced" not in first[2]
            assert "X-Arc-Coalesced" not in second[2]
            assert server.queries_executed == 2
            assert server.coalescer.coalesced_total == 0
        finally:
            _stop(server, thread)

    def test_different_budgets_never_share_an_execution(self):
        """The coalesce key includes the budget: a request with its own
        timeout must not receive another budget's answer."""
        server, thread = _serve(workers=2, queue_depth=8)
        try:
            results = []
            lock = threading.Lock()

            def fire(body):
                result = _post(server, body)
                with lock:
                    results.append(result)

            posters = [
                threading.Thread(
                    target=fire, args=({"query": RUNAWAY, "timeout_ms": 200},)
                ),
                threading.Thread(
                    target=fire, args=({"query": RUNAWAY, "timeout_ms": 400},)
                ),
            ]
            for poster in posters:
                poster.start()
            for poster in posters:
                poster.join(timeout=15)
            assert [status for status, _, _ in results] == [408, 408]
            assert server.coalescer.coalesced_total == 0
        finally:
            _stop(server, thread)


class TestWorkerScaling:
    def test_distinct_concurrent_posts_exercise_multiple_workers(self):
        server, thread = _serve(workers=3, queue_depth=16)
        try:
            results = []
            lock = threading.Lock()

            def fire(index):
                # Distinct query texts (padding) defeat coalescing and the
                # prepared LRU; the deadline keeps each worker busy long
                # enough that the pool must fan out.
                body = {
                    "query": RUNAWAY + " " * index,
                    "timeout_ms": 200,
                }
                result = _post(server, body)
                with lock:
                    results.append(result)

            posters = [
                threading.Thread(target=fire, args=(index,))
                for index in range(6)
            ]
            for poster in posters:
                poster.start()
            for poster in posters:
                poster.join(timeout=30)
            assert len(results) == 6
            assert all(status == 408 for status, _, _ in results)
            workers = {headers["X-Arc-Worker"] for _, _, headers in results}
            assert len(workers) >= 2, f"all jobs ran on worker(s) {workers}"
        finally:
            _stop(server, thread)


class TestAdmissionControl:
    def test_full_queue_returns_typed_429_with_retry_after(self):
        server, thread = _serve(workers=1, queue_depth=1)
        try:
            release, blocker = _occupy_worker(server)
            queued_result = {}

            def queued_post():
                queued_result["response"] = _post(server, {"query": SIMPLE})

            poster = threading.Thread(target=queued_post)
            poster.start()
            assert _wait_until(lambda: server.pool.depth() == 1)
            # Worker busy + queue full: the next distinct request bounces.
            status, body, headers = _post(
                server, {"query": SIMPLE + " "}, timeout=10
            )
            assert status == 429
            refusal = json.loads(body)
            assert refusal["error_type"] == "AdmissionError"
            assert "queue is full" in refusal["error"]
            assert headers["Retry-After"] == "1"
            # The refused request executed nothing; the queued one still
            # completes once the worker frees up.
            release.set()
            blocker.wait(10)
            poster.join(timeout=10)
            assert queued_result["response"][0] == 200
            assert server.queries_executed == 1
        finally:
            _stop(server, thread)


class TestMultiCatalog:
    def test_catalog_field_selects_the_named_catalog(self):
        session = Session(_db([(1,)]), SET_CONVENTIONS, options=EvalOptions())
        server = make_server(
            session, workers=2, catalogs={"alt": _db([(5,), (6,)])}
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body, _ = _post(server, {"query": SIMPLE})
            assert status == 200 and json.loads(body)["rows"] == [[1]]
            status, body, _ = _post(
                server, {"query": SIMPLE, "catalog": "alt"}
            )
            assert status == 200 and json.loads(body)["rows"] == [[5], [6]]
            # Explicitly naming the default catalog coalesces with omitting
            # it: byte-identical and served warm by the same session.
            status, body, _ = _post(
                server, {"query": SIMPLE, "catalog": "default"}
            )
            assert status == 200 and json.loads(body)["rows"] == [[1]]
        finally:
            _stop(server, thread)

    def test_unknown_catalog_is_a_400(self):
        server, thread = _serve(workers=1)
        try:
            status, body, _ = _post(
                server, {"query": SIMPLE, "catalog": "nope"}
            )
            assert status == 400
            assert "unknown catalog" in json.loads(body)["error"]
        finally:
            _stop(server, thread)

    def test_healthz_lists_catalogs(self):
        session = Session(_db(), SET_CONVENTIONS, options=EvalOptions())
        server = make_server(session, catalogs={"alt": _db([(9,)])})
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            status, body = _get(server, "/healthz")
            assert status == 200
            assert json.loads(body)["catalogs"] == ["alt", "default"]
        finally:
            _stop(server, thread)


class TestDrain:
    def test_queued_request_completes_during_shutdown(self):
        """Drain = stop accepting, finish queued + in-flight, then close:
        a request sitting in the queue when SIGTERM-style drain begins
        still gets its 200."""
        server, thread = _serve(workers=1, queue_depth=8)
        release, blocker = _occupy_worker(server)
        queued_result = {}

        def queued_post():
            queued_result["response"] = _post(server, {"query": SIMPLE})

        poster = threading.Thread(target=queued_post)
        poster.start()
        assert _wait_until(lambda: server.pool.depth() == 1)
        drainer = threading.Thread(target=server.drain)
        drainer.start()
        assert _wait_until(lambda: server.pool.draining)
        # The worker is still busy and a request is still queued — now let
        # the drain race them to completion.
        release.set()
        blocker.wait(10)
        poster.join(timeout=10)
        drainer.join(timeout=10)
        assert not drainer.is_alive()
        status, body, _ = queued_result["response"]
        assert status == 200
        assert json.loads(body)["rows"] == [[1]]
        # serve_forever exited; close the socket for good.
        server.server_close()
        thread.join(timeout=5)
        assert not thread.is_alive()


class TestPoolSurfaces:
    def test_stats_and_healthz_grow_pool_fields(self):
        server, thread = _serve(workers=2, queue_depth=4)
        try:
            _post(server, {"query": SIMPLE})
            status, body = _get(server, "/stats")
            assert status == 200
            stats = json.loads(body)
            pool = stats["pool"]
            assert pool["workers"] == 2
            assert pool["queue_capacity"] == 4
            assert pool["busy"] == 0
            assert pool["queue_depth"] == 0
            assert pool["coalesced_total"] == 0
            assert pool["queries_executed"] == 1
            assert sum(row["handled"] for row in pool["per_worker"]) >= 1
            status, body = _get(server, "/healthz")
            health = json.loads(body)
            assert health["workers"] == 2
            assert health["busy"] == 0
            assert health["queue_depth"] == 0
            assert health["coalesced_total"] == 0
            assert health["queue_saturated"] is False
        finally:
            _stop(server, thread)

    def test_healthz_degrades_when_the_queue_saturates(self):
        server, thread = _serve(workers=1, queue_depth=1)
        try:
            release, blocker = _occupy_worker(server)
            poster = threading.Thread(
                target=lambda: _post(server, {"query": SIMPLE})
            )
            poster.start()
            assert _wait_until(lambda: server.pool.depth() == 1)
            status, body = _get(server, "/healthz")
            assert status == 503
            health = json.loads(body)
            assert health["status"] == "degraded"
            assert health["queue_saturated"] is True
            assert health["degraded_backends"] == []  # no breaker is open
            release.set()
            blocker.wait(10)
            poster.join(timeout=10)
            assert _wait_until(
                lambda: _get(server, "/healthz")[0] == 200, timeout=5
            )
        finally:
            _stop(server, thread)

    def test_metrics_export_pool_gauges_and_worker_histograms(self):
        server, thread = _serve(workers=2, queue_depth=4)
        try:
            release, blocker = _occupy_worker(server)
            _post(server, {"query": SIMPLE})
            release.set()
            blocker.wait(10)
            status, body = _get(server, "/metrics")
            assert status == 200
            text = body.decode()
            assert "arc_pool_workers 2" in text
            assert "arc_pool_queue_capacity 4" in text
            assert "arc_pool_queue_depth 0" in text
            assert "arc_coalesced_total 0" in text
            assert "arc_worker_seconds_bucket" in text
            assert 'arc_worker_requests_total{worker="' in text
        finally:
            _stop(server, thread)

    def test_aggregated_stats_sum_across_worker_sessions(self):
        """Counters in /stats are summed over every worker's sessions, so
        multi-worker serving loses no observability."""
        server, thread = _serve(workers=2, queue_depth=8)
        try:
            results = []
            lock = threading.Lock()

            def fire(index):
                result = _post(
                    server,
                    {"query": RUNAWAY + " " * index, "timeout_ms": 150},
                )
                with lock:
                    results.append(result)

            posters = [
                threading.Thread(target=fire, args=(index,))
                for index in range(4)
            ]
            for poster in posters:
                poster.start()
            for poster in posters:
                poster.join(timeout=30)
            assert all(status == 408 for status, _, _ in results)
            stats = json.loads(_get(server, "/stats")[1])
            # Every timeout was recorded by *some* worker session; the
            # aggregate sees all of them.
            assert stats["timeouts"] == 4
        finally:
            _stop(server, thread)
