"""Cross-language integration: ARC as the Rosetta Stone.

The paper's thesis is that one abstract calculus can embed the patterns of
SQL, Datalog/Soufflé, Rel, and TRC.  These tests express the *same intent*
in every frontend and check that the ARC embeddings (i) produce the same
answers under the right conventions and (ii) expose the pattern differences
the paper names (FIO vs FOI, shared vs per-aggregate scopes).
"""

import pytest

from repro.analysis import detect_patterns, same_pattern
from repro.core.conventions import SET_CONVENTIONS, SOUFFLE_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.frontends import datalog, rel, trc
from repro.frontends.sql import to_arc as sql_to_arc
from repro.workloads import instances, paper_examples


def values_set(relation):
    """Order-insensitive comparison across differing attribute names."""
    return {
        tuple(row[a] for a in relation.schema) for row in relation.iter_distinct()
    }


class TestConjunctiveQuery:
    """eq. (1) expressed in ARC, TRC, and SQL."""

    def test_three_frontends_agree(self, rs_db):
        arc = paper_examples.arc("eq1")
        from_trc = trc.to_arc("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
        from_sql = sql_to_arc(
            "select R.A from R, S where R.B = S.B and S.C = 0", database=rs_db
        )
        results = [
            evaluate(q, rs_db, SET_CONVENTIONS) for q in (arc, from_trc, from_sql)
        ]
        assert values_set(results[0]) == values_set(results[1]) == values_set(results[2])

    def test_sql_form_is_pattern_equal_to_arc(self, rs_db):
        arc = paper_examples.arc("eq1")
        from_sql = sql_to_arc(
            "select R.A from R, S where R.B = S.B and S.C = 0", database=rs_db
        )
        assert same_pattern(arc, from_sql)


class TestGroupedAggregate:
    """Fig. 4/5: the same aggregate in FIO (SQL) and FOI (Soufflé) styles."""

    @pytest.fixture
    def db(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (1, 20), (2, 5)])
        return db

    def test_all_four_agree(self, db):
        fio = paper_examples.arc("eq3")
        foi = paper_examples.arc("eq7")
        from_sql = sql_to_arc(
            "select R.A, sum(R.B) sm from R group by R.A", database=db
        )
        from_souffle = datalog.to_arc(
            "Q(a, sum b : {R(a, b)}) :- R(a, _).", database=db
        )
        from_rel = rel.to_arc("def Q(a, sm) : sm = sum[(b) : R(a, b)]", database=db)
        results = [
            evaluate(q, db, SET_CONVENTIONS)
            for q in (fio, foi, from_sql, from_souffle, from_rel)
        ]
        reference = values_set(results[0])
        for result in results[1:]:
            assert values_set(result) == reference

    def test_fio_foi_patterns_differ(self):
        fio = paper_examples.arc("eq3")
        foi = paper_examples.arc("eq7")
        assert not same_pattern(fio, foi, anonymize_relations=True)
        assert "fio-aggregation" in detect_patterns(fio)
        assert "foi-aggregation" in detect_patterns(foi)

    def test_souffle_translation_follows_foi(self, db):
        from_souffle = datalog.to_arc(
            "Q(a, sum b : {R(a, b)}) :- R(a, _).", database=db
        )
        assert "foi-aggregation" in detect_patterns(from_souffle)

    def test_sql_translation_follows_fio(self, db):
        from_sql = sql_to_arc(
            "select R.A, sum(R.B) sm from R group by R.A", database=db
        )
        assert "fio-aggregation" in detect_patterns(from_sql)


class TestMultipleAggregates:
    """Fig. 6/7/8: one query, three pattern-distinct formalisms (eqs. 8/10/12)."""

    def test_results_agree(self, payroll_db):
        shapes = [
            paper_examples.arc("eq8"),
            paper_examples.arc("eq10"),
            paper_examples.arc("eq12"),
            sql_to_arc(paper_examples.SQL["fig6a"], database=payroll_db),
            rel.to_arc(paper_examples.REL["eq11"], database=payroll_db),
        ]
        results = [evaluate(q, payroll_db, SET_CONVENTIONS) for q in shapes]
        reference = values_set(results[0])
        for result in results[1:]:
            assert values_set(result) == reference
        assert reference == {("cs", 55.0)}

    def test_patterns_pairwise_distinct(self):
        eq8 = paper_examples.arc("eq8")
        eq10 = paper_examples.arc("eq10")
        eq12 = paper_examples.arc("eq12")
        assert not same_pattern(eq8, eq10, anonymize_relations=True)
        assert not same_pattern(eq8, eq12, anonymize_relations=True)
        assert not same_pattern(eq10, eq12, anonymize_relations=True)

    def test_sql_matches_eq8_pattern(self, payroll_db):
        from_sql = sql_to_arc(paper_examples.SQL["fig6a"], database=payroll_db)
        assert same_pattern(from_sql, paper_examples.arc("eq8"), anonymize_relations=True)


class TestRecursion:
    def test_arc_and_datalog_agree(self, ancestor_db):
        arc = paper_examples.arc("eq16")
        from_datalog = datalog.to_arc(
            paper_examples.DATALOG["fig10"], database=ancestor_db
        )
        a = evaluate(arc, ancestor_db, SET_CONVENTIONS)
        b = evaluate(from_datalog, ancestor_db, SOUFFLE_CONVENTIONS)
        assert values_set(a) == values_set(b)


class TestUniqueSet:
    def test_monolithic_modular_and_sql_agree(self, likes_db):
        monolithic = paper_examples.arc("eq22")
        modular = parse(paper_examples.ARC["eq23_24"])
        from_sql = sql_to_arc(paper_examples.SQL["fig17"], database=likes_db)
        results = [
            evaluate(monolithic, likes_db, SET_CONVENTIONS),
            evaluate(modular, likes_db, SET_CONVENTIONS),
            evaluate(from_sql, likes_db, SQL_CONVENTIONS),
        ]
        for result in results:
            assert values_set(result) == {("bob",)}

    def test_on_generated_instances(self):
        from repro.data import generators

        for seed in range(3):
            db = generators.likes_database(5, 4, seed=seed)
            db.add(db["Likes"].rename({"drinker": "d", "beer": "b"}, name="L"))
            monolithic = paper_examples.arc("eq22")
            modular = parse(paper_examples.ARC["eq23_24"])
            a = evaluate(monolithic, db, SET_CONVENTIONS)
            b = evaluate(modular, db, SET_CONVENTIONS)
            assert a.set_equal(b)
            # Cross-check against a direct Python computation.
            sets = {}
            for row in db["L"]:
                sets.setdefault(row["d"], set()).add(row["b"])
            expected = {
                d for d, beers in sets.items()
                if sum(1 for other in sets.values() if other == beers) == 1
            }
            assert {row["d"] for row in a} == expected


class TestConventionsAcrossLanguages:
    """Section 2.6: same relational pattern, different conventions."""

    def test_eq15_sql_vs_souffle(self):
        db = instances.conventions_instance()
        arc = paper_examples.arc("eq15")
        from repro.data import NULL

        sql_style = evaluate(arc, db, SET_CONVENTIONS)
        souffle_style = evaluate(arc, db, SOUFFLE_CONVENTIONS)
        assert values_set(sql_style) == {(1, NULL)}
        assert values_set(souffle_style) == {(1, 0)}

    def test_datalog_frontend_same_pattern_as_arc(self):
        db = instances.conventions_instance()
        from_souffle = datalog.to_arc(paper_examples.DATALOG["eq15"], database=db)
        arc = paper_examples.arc("eq15")
        assert same_pattern(from_souffle, arc, anonymize_relations=True)


class TestMatrixMultiplication:
    def test_against_numpy(self):
        import numpy as np

        from repro.data import generators

        rng_seed = 3
        a_rel = generators.sparse_matrix("A", 6, 5, density=0.5, seed=rng_seed)
        b_rel = generators.sparse_matrix("B", 5, 4, density=0.5, seed=rng_seed + 1)
        db = Database([a_rel, b_rel])
        result = evaluate(paper_examples.arc("eq25_arc"), db, SET_CONVENTIONS)
        dense_a = np.array(generators.matrix_to_dense(a_rel, 6, 5))
        dense_b = np.array(generators.matrix_to_dense(b_rel, 5, 4))
        expected = dense_a @ dense_b
        produced = np.zeros_like(expected)
        for row in result:
            produced[row["row"], row["col"]] = row["val"]
        # Sparse encoding omits zero cells; compare non-zero structure.
        assert (produced == expected * (expected != 0)).all()

    def test_external_star_form_matches(self):
        from repro.data import generators

        a_rel = generators.sparse_matrix("A", 4, 4, density=0.6, seed=9)
        b_rel = generators.sparse_matrix("B", 4, 3, density=0.6, seed=10)
        db = Database([a_rel, b_rel])
        inline = evaluate(paper_examples.arc("eq25_arc"), db, SET_CONVENTIONS)
        reified = evaluate(paper_examples.arc("eq26"), db, SET_CONVENTIONS)
        assert inline.set_equal(reified)
