"""Every registered paper example parses, validates, and executes."""

import pytest

from repro.core import nodes as n
from repro.core.parser import parse
from repro.core.validator import validate
from repro.workloads import instances, paper_examples


class TestRegistry:
    @pytest.mark.parametrize("key", paper_examples.all_arc_keys())
    def test_arc_texts_parse(self, key):
        node = paper_examples.arc(key)
        assert isinstance(node, (n.Collection, n.Sentence, n.Program))

    @pytest.mark.parametrize("key", paper_examples.all_arc_keys())
    def test_arc_texts_validate(self, key):
        node = paper_examples.arc(key)
        report = validate(node, allow_abstract=True)
        assert report.ok, [str(i) for i in report.issues]

    @pytest.mark.parametrize("key", paper_examples.all_sql_keys())
    def test_sql_texts_parse(self, key):
        from repro.frontends.sql import parse_sql

        parse_sql(paper_examples.SQL[key])

    @pytest.mark.parametrize("key", sorted(paper_examples.DATALOG))
    def test_datalog_texts_parse(self, key):
        from repro.frontends.datalog import parse_rules

        assert parse_rules(paper_examples.DATALOG[key])

    @pytest.mark.parametrize("key", sorted(paper_examples.REL))
    def test_rel_texts_parse(self, key):
        from repro.frontends.rel import parse_rel

        assert parse_rel(paper_examples.REL[key])

    def test_trc_text_normalizes(self):
        from repro.frontends import trc

        arc = trc.to_arc(paper_examples.TRC["textbook"])
        assert isinstance(arc, n.Collection)


class TestInstances:
    def test_count_bug_instance(self):
        db = instances.count_bug_instance()
        assert len(db["R"]) == 1 and db["S"].is_empty()

    def test_conventions_instance(self):
        db = instances.conventions_instance()
        assert len(db["R"]) == 1 and db["S"].is_empty()

    def test_payroll_totals(self):
        db = instances.payroll_instance()
        by_dept = {}
        empl_dept = {row["empl"]: row["dept"] for row in db["R"]}
        for row in db["S"]:
            dept = empl_dept[row["empl"]]
            by_dept[dept] = by_dept.get(dept, 0) + row["sal"]
        assert by_dept["cs"] > 100 and by_dept["ee"] <= 100

    def test_likes_has_unique_and_duplicate_sets(self):
        db = instances.likes_instance()
        sets = {}
        for row in db["L"]:
            sets.setdefault(row["d"], set()).add(row["b"])
        values = list(sets.values())
        assert values.count(sets["alice"]) == 2  # alice == carol
        assert values.count(sets["bob"]) == 1

    def test_outer_join_instance_has_mismatches(self):
        db = instances.outer_join_instance()
        s_years = {row["y"] for row in db["S"]}
        unmatched = [row for row in db["R"] if row["y"] not in s_years]
        assert unmatched

    def test_employees_demo_schema(self):
        db = instances.employees_demo()
        assert db["Employee"].schema == ("name", "dept", "salary")
