"""Targeted tests for the comprehension renderer (beyond round-trip props)."""

import pytest

from repro.backends.comprehension import render, render_ascii
from repro.core import nodes as n
from repro.core.parser import parse


class TestRendering:
    def test_paper_eq1_verbatim(self):
        text = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}"
        assert render(parse(text)) == text

    def test_grouping_rendering(self):
        text = "{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"
        assert render(parse(text)) == text

    def test_gamma_empty(self):
        text = "{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}"
        assert render(parse(text)) == text

    def test_join_annotation(self):
        text = (
            "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s))"
            "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
        )
        assert render(parse(text)) == text

    def test_negated_quantifier_compact(self):
        text = "¬∃r ∈ R[r.A = 1]"
        assert render(parse(text)) == text

    def test_negated_formula_parenthesized(self):
        text = render(parse("∃r ∈ R[¬(r.A = 1 ∧ r.B = 2)]"))
        assert "¬(" in text

    def test_or_inside_and_parenthesized(self):
        rendered = render(parse("{Q(A) | ∃r ∈ R[(r.A = 1 ∨ r.A = 2) ∧ Q.A = r.A]}"))
        assert "(" in rendered
        reparsed = parse(rendered)
        assert isinstance(reparsed.body.body, n.And)

    def test_ascii_render(self):
        text = render_ascii(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        assert "exists" in text and "∃" not in text

    def test_string_null_bool_constants(self):
        text = render(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 'x' ∧ r.C = null ∧ r.D = true]}")
        )
        assert "'x'" in text and "null" in text and "true" in text

    def test_quoted_relation_name(self):
        text = render(parse("{Q(o) | ∃f ∈ '*'[Q.o = f.out ∧ f.$1 = 2 ∧ f.$2 = 3]}"))
        assert "'*'" in text
        assert render(parse(text)) == text

    def test_program_rendering(self):
        program = parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        text = render(program)
        assert text.startswith("V := ") and text.endswith("main V")

    def test_sentence_program_main(self):
        program = n.Program({}, n.Sentence(parse("∃r ∈ R[r.A = 1]").body))
        assert render(program) == "∃r ∈ R[r.A = 1]"

    def test_countdistinct_rendering(self):
        text = "{Q(c) | ∃r ∈ R, γ ∅[Q.c = countdistinct(r.A)]}"
        assert render(parse(text)) == text

    def test_unknown_node_raises(self):
        with pytest.raises(TypeError):
            render("not a node")
