"""The recursive fragment of ``sql_render``, executed for real.

Until the SQLite backend existed, every ``WITH RECURSIVE`` rendering was
untestable: the SQL frontend cannot parse recursion back, so round-trip
tests skipped it.  These tests close the gap — each recursive program is
rendered, executed on SQLite, and asserted equal to the engine's fixpoint
(the semantic oracle), under SQL conventions.

The recursive CTE uses set-based UNION (matching the fixpoint's Section 2.9
set semantics), so it terminates on cyclic inputs and collapses multiple
derivation paths exactly like the engine does.
"""

import warnings

import pytest

from repro.backends.exec import BackendFallbackWarning
from repro.backends.sql_render import to_sql
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, generators
from repro.engine import evaluate
from repro.engine.fixpoint import transitive_closure_reference

LINEAR_TC = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)

RIGHT_LINEAR_TC = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃a ∈ A, p ∈ P[A.s = a.s ∧ a.t = p.s ∧ A.t = p.t]}"
)

SAME_GENERATION = (
    "SG := {SG(x, y) | ∃p1 ∈ P, p2 ∈ P[SG.x = p1.t ∧ SG.y = p2.t ∧ "
    "p1.s = p2.s] ∨ "
    "∃p1 ∈ P, p2 ∈ P, sg ∈ SG[SG.x = p1.t ∧ SG.y = p2.t ∧ "
    "p1.s = sg.x ∧ p2.s = sg.y]} ; main SG"
)

TC_THEN_AGGREGATE = (
    "A := {A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]} ;\n"
    "D := {D(s, c) | ∃a ∈ A, γ a.s[D.s = a.s ∧ D.c = count(a.t)]} ; main D"
)


def run_native(node, db):
    """Evaluate on SQLite, failing the test on any planner fallback."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", BackendFallbackWarning)
        return evaluate(node, db, SQL_CONVENTIONS, backend="sqlite")


def _edges(pairs):
    db = Database()
    db.create("P", ("s", "t"), pairs)
    return db


CHAIN = _edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])
DIAMOND = _edges([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")])
CYCLE = _edges([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])


@pytest.mark.parametrize("text", [LINEAR_TC, RIGHT_LINEAR_TC], ids=["left", "right"])
@pytest.mark.parametrize(
    "db", [CHAIN, DIAMOND, CYCLE], ids=["chain", "diamond", "cycle"]
)
def test_transitive_closure_matches_fixpoint(text, db):
    node = parse(text)
    # A self-recursive collection renders as WITH RECURSIVE via the backend's
    # program wrap; the fixpoint engine is the oracle.
    result = run_native(node, db)
    oracle = evaluate(node, db, SQL_CONVENTIONS, planner=False)
    assert result == oracle
    expected = transitive_closure_reference(
        (row["s"], row["t"]) for row in db["P"].iter_distinct()
    )
    assert {(row["s"], row["t"]) for row in result.iter_distinct()} == expected


def test_rendering_is_with_recursive_union():
    from repro.backends.exec.sqlite_exec import _prepare

    prepared = _prepare(parse(LINEAR_TC), CHAIN)
    sql = to_sql(prepared)
    assert sql.startswith("with recursive")
    assert "\nunion\n" in sql and "union all" not in sql


def test_multiple_derivation_paths_collapse_like_the_fixpoint():
    """The diamond yields (a, d) twice under UNION ALL; the set-based UNION
    must report it once, exactly as the fixpoint does — under *bag*
    conventions, where the difference would be observable."""
    node = parse(LINEAR_TC)
    result = run_native(node, DIAMOND)
    assert result.multiplicity({"s": "a", "t": "d"}) == 1


def test_cyclic_input_terminates_natively():
    result = run_native(parse(LINEAR_TC), CYCLE)
    assert result.multiplicity({"s": "a", "t": "a"}) == 1


def test_random_dags_match_fixpoint():
    for seed in range(3):
        db = generators.parent_edges(25, seed=seed, extra_edges=8)
        node = parse(LINEAR_TC)
        assert run_native(node, db) == evaluate(
            node, db, SQL_CONVENTIONS, planner=False
        )


def test_same_generation_program():
    db = _edges([("r", "a"), ("r", "b"), ("a", "c"), ("b", "d")])
    node = parse(SAME_GENERATION)
    assert run_native(node, db) == evaluate(node, db, SQL_CONVENTIONS, planner=False)


def test_recursive_cte_feeding_a_downstream_aggregate():
    """A recursive CTE plus a non-recursive aggregating CTE in one WITH."""
    node = parse(TC_THEN_AGGREGATE)
    sql = to_sql(node)
    assert sql.startswith("with recursive")
    assert "group by" in sql
    result = run_native(node, DIAMOND)
    assert result == evaluate(node, DIAMOND, SQL_CONVENTIONS, planner=False)


def test_nonlinear_recursion_falls_back_but_agrees():
    nonlinear = parse(
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃a1 ∈ A, a2 ∈ A[A.s = a1.s ∧ a1.t = a2.s ∧ A.t = a2.t]}"
    )
    with pytest.warns(BackendFallbackWarning):
        result = evaluate(nonlinear, CHAIN, SQL_CONVENTIONS, backend="sqlite")
    assert result == evaluate(nonlinear, CHAIN, SQL_CONVENTIONS, planner=False)
