"""Fault injection, retries, and the circuit breaker.

The chaos invariant these tests pin: **every injected fault yields either a
clean planner fallback — differentially equal to the reference oracle — or
a typed error; never a hang, never a wrong answer.**
"""

import sqlite3
import warnings

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.backends.exec import (
    BackendFallbackWarning,
    breaker_for,
    breaker_states,
    reset_breakers,
    run_backend,
)
from repro.backends.exec import registry as registry_mod
from repro.backends.exec.registry import BackendUnsupported, CircuitBreaker
from repro.core.conventions import SQL_CONVENTIONS
from repro.errors import ArcError
from repro.util import failpoints
from repro.util.failpoints import FailpointError

QUERY = "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}"


@pytest.fixture(autouse=True)
def clean_state():
    """Disarm failpoints, drop breakers, and cold-start the catalog cache.

    The cold start matters: ``catalog.load`` only fires on an actual load,
    and the fingerprint cache would otherwise serve a warm connection from
    an earlier test with the same rows.  Teardown re-loads
    ``REPRO_FAILPOINTS`` so an env-driven chaos run (the CI matrix) keeps
    its arming for the modules that expect it.
    """
    from repro.backends.exec import sqlite_exec

    failpoints.reset()
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    failpoints.reset()
    reset_breakers()
    failpoints.load_env()


def _db(rows=((1, 10), (2, 20), (3, 30))):
    db = repro.Database()
    db.create("R", ("A", "B"), list(rows))
    return db


def _sqlite_session(db=None):
    return Session(
        db if db is not None else _db(),
        SQL_CONVENTIONS,
        options=EvalOptions(backend="sqlite"),
    )


def _oracle_rows(db):
    session = Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="reference"))
    return session.prepare(QUERY).run().sorted_rows()


class TestSpecParsing:
    def test_plain_kind(self):
        assert failpoints.parse_spec("locked") == ("locked", None, None)

    def test_count_and_message(self):
        assert failpoints.parse_spec("error*3:backend down") == (
            "error", 3, "backend down",
        )

    @pytest.mark.parametrize("bad", ["nope", "locked*x", "locked*0", "locked*-1"])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(FailpointError):
            failpoints.parse_spec(bad)

    def test_unknown_site_raises(self):
        with pytest.raises(FailpointError, match="unknown failpoint site"):
            failpoints.activate("sqlite.nope", "locked")

    def test_configure_round_trips_through_active(self):
        failpoints.configure("sqlite.execute=locked*2,catalog.load=unsupported")
        assert failpoints.active() == {
            "sqlite.execute": "locked*2",
            "catalog.load": "unsupported",
        }

    def test_configure_empty_disarms_everything(self):
        failpoints.activate("sql.render", "boom")
        failpoints.configure("")
        assert failpoints.active() == {}

    def test_load_env_reads_the_variable(self):
        failpoints.load_env({"REPRO_FAILPOINTS": "sql.render=unsupported"})
        assert failpoints.active() == {"sql.render": "unsupported"}


class TestHitSemantics:
    def test_unarmed_site_is_free(self):
        assert failpoints.hit("sqlite.execute") is None
        assert failpoints.hits["sqlite.execute"] == 0

    def test_count_limited_spec_exhausts(self):
        failpoints.activate("sqlite.execute", "locked*2")
        for _ in range(2):
            with pytest.raises(sqlite3.OperationalError, match="locked"):
                failpoints.hit("sqlite.execute")
        failpoints.hit("sqlite.execute")  # third hit passes
        assert failpoints.hits["sqlite.execute"] == 3
        assert failpoints.active()["sqlite.execute"] == "locked*0"

    def test_kinds_raise_their_exception(self):
        failpoints.activate("sqlite.connect", "unsupported:no catalog")
        with pytest.raises(BackendUnsupported, match="no catalog"):
            failpoints.hit("sqlite.connect")
        failpoints.activate("sqlite.connect", "boom")
        with pytest.raises(RuntimeError):
            failpoints.hit("sqlite.connect")


#: The sites on the in-process backend execution path.  The ``pool.*``
#: sites live in the serving layer — arming them cannot (and must not)
#: perturb a direct Session run; their chaos coverage lives in
#: ``tests/serve/test_supervision.py``.
BACKEND_SITES = tuple(
    site for site in failpoints.SITES if not site.startswith("pool.")
)


class TestChaosDifferential:
    """Armed fault at every site × typed kind → fallback equals the oracle."""

    @pytest.mark.parametrize("site", BACKEND_SITES)
    @pytest.mark.parametrize("kind", ["locked", "error", "unsupported"])
    def test_fault_falls_back_to_a_correct_answer(self, site, kind):
        db = _db()
        expected = _oracle_rows(db)
        failpoints.reset()  # the oracle run must be fault-free too
        reset_breakers()
        failpoints.activate(site, kind)
        session = _sqlite_session(db)
        info = session.prepare(QUERY).run_info()
        assert info["result"].sorted_rows() == expected
        assert info["fallback_reasons"], (
            f"fault at {site} should have produced a fallback reason"
        )

    def test_boom_is_the_untyped_path_and_counts_a_failure(self):
        failpoints.activate("sqlite.execute", "boom")
        session = _sqlite_session()
        with pytest.raises(RuntimeError):
            session.prepare(QUERY).run()
        assert breaker_for("sqlite").failures == 1


class TestRetries:
    def test_locked_twice_retries_then_succeeds(self):
        failpoints.activate("sqlite.execute", "locked*2")
        db = _db(((1, 10), (2, 20), (3, 30), (4, 40)))
        session = _sqlite_session(db)
        result = session.prepare(QUERY).run()
        assert [row["A"] for row in result.sorted_rows()] == [2, 3, 4]
        assert session.stats.retries == 2
        # All attempts went to the sqlite engine: no fallback happened.
        assert breaker_for("sqlite").failures == 0

    def test_persistent_lock_exhausts_retries_and_falls_back(self):
        failpoints.activate("sqlite.execute", "locked")
        db = _db()
        session = _sqlite_session(db)
        info = session.prepare(QUERY).run_info()
        assert info["result"].sorted_rows() == _oracle_rows(_db())
        assert any("locked" in r for r in info["fallback_reasons"])
        assert session.stats.retries == 2  # attempts 2 and 3 were retries

    def test_non_transient_error_is_not_retried(self):
        failpoints.activate("sqlite.execute", "error:disk I/O error")
        session = _sqlite_session()
        info = session.prepare(QUERY).run_info()
        assert session.stats.retries == 0
        assert any("disk I/O error" in r for r in info["fallback_reasons"])


class TestCircuitBreakerUnit:
    def test_trips_after_threshold_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "x", threshold=3, cooldown_s=10.0, clock=lambda: clock[0]
        )
        assert breaker.record_failure() is False
        assert breaker.record_failure() is False
        assert breaker.record_failure() is True  # the trip
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker("x", threshold=2, clock=lambda: 0.0)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() is False  # count restarted
        assert breaker.state == "closed"

    def test_cooldown_half_opens_then_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "x", threshold=1, cooldown_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert not breaker.allow()
        clock[0] = 5.0
        assert breaker.state == "half-open"
        assert breaker.allow()  # the single trial run
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens_for_another_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            "x", threshold=1, cooldown_s=5.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 5.0
        assert breaker.allow()
        assert breaker.record_failure() is True  # re-trip
        assert breaker.trips == 2
        clock[0] = 9.0  # cooldown restarted at t=5
        assert not breaker.allow()
        clock[0] = 10.0
        assert breaker.allow()


class TestCircuitBreakerDispatch:
    def _install_breaker(self, clock, threshold=2):
        breaker = CircuitBreaker(
            "sqlite", threshold=threshold, cooldown_s=30.0,
            clock=lambda: clock[0],
        )
        registry_mod._BREAKERS["sqlite"] = breaker
        return breaker

    def test_runtime_failures_open_the_breaker_and_skip_the_probe(self):
        clock = [0.0]
        breaker = self._install_breaker(clock)
        failpoints.activate("sqlite.execute", "error")
        db = _db()
        session = _sqlite_session(db)
        prepared = session.prepare(QUERY)
        expected = _oracle_rows(_db())

        info = prepared.run_info()
        assert info["result"].sorted_rows() == expected
        info = prepared.run_info()
        assert info["result"].sorted_rows() == expected
        assert breaker.state == "open"
        assert session.stats.breaker_trips == 1

        # Breaker open: dispatch goes straight to the fallback with the
        # breaker named as the reason — the injected fault never fires.
        hits_before = failpoints.hits["sqlite.execute"]
        info = prepared.run_info()
        assert info["result"].sorted_rows() == expected
        assert any("circuit breaker" in r for r in info["fallback_reasons"])
        assert failpoints.hits["sqlite.execute"] == hits_before

    def test_half_open_trial_success_closes_and_clears_degradation(self):
        clock = [0.0]
        breaker = self._install_breaker(clock, threshold=1)
        failpoints.activate("sqlite.execute", "error*1")
        session = _sqlite_session()
        prepared = session.prepare(QUERY)
        prepared.run()  # fault → fallback → breaker opens
        assert breaker.state == "open"
        clock[0] = 30.0  # cooldown elapsed → half-open trial
        info = prepared.run_info()
        assert info["fallback_reasons"] == []  # the sqlite engine answered
        assert breaker.state == "closed"
        assert breaker_states()["sqlite"]["state"] == "closed"

    def test_static_probe_refusals_do_not_count(self):
        # Set semantics is a *static* refusal: steady-state fallback, not
        # a backend health problem.
        db = _db()
        session = Session(
            db, repro.SET_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        for _ in range(registry_mod.BREAKER_THRESHOLD + 1):
            session.prepare(QUERY).run()
        assert breaker_for("sqlite").failures == 0
        assert breaker_for("sqlite").state == "closed"

    def test_planner_backend_carries_no_breaker(self):
        db = _db()
        run_backend(
            Session(db, SQL_CONVENTIONS).prepare(QUERY).node,
            db, SQL_CONVENTIONS, "planner",
        )
        assert "planner" not in breaker_states()


class TestReasonsChannel:
    def test_reasons_sink_suppresses_the_warning(self):
        failpoints.activate("sql.render", "unsupported:injected refusal")
        db = _db()
        node = Session(db, SQL_CONVENTIONS).prepare(QUERY).node
        reasons = []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_backend(
                node, db, SQL_CONVENTIONS, "sqlite", reasons=reasons
            )
        assert [row["A"] for row in result.sorted_rows()] == [2, 3]
        assert any("injected refusal" in r for r in reasons)
        assert not [w for w in caught if isinstance(w.message, BackendFallbackWarning)]

    def test_without_a_sink_the_warning_still_fires(self):
        failpoints.activate("sql.render", "unsupported")
        db = _db()
        node = Session(db, SQL_CONVENTIONS).prepare(QUERY).node
        with pytest.warns(BackendFallbackWarning):
            run_backend(node, db, SQL_CONVENTIONS, "sqlite")
