"""Differential harness: reference ≡ planner ≡ decorrelated ≡ sqlite.

The backend registry's contract is that every backend answers every query
identically (falling back to the planner, with a warning, when it cannot).
This harness enforces the contract over all paper workloads, the randomized
chain-join/grouping families, and the correlated-lateral (FOI → FIO)
family under SQL conventions — where the SQLite offload engine runs most
workloads *natively* — and exercises the capability-fallback paths under
the set and Soufflé conventions, which the SQL engine deliberately refuses.
Every case also runs the planner with ``decorrelate=False``, so the
decorrelation pass is differentially pinned against its per-row oracle.

``expect_native`` pins down which paper workloads must execute on SQLite
itself (no fallback warning): if a rendering or capability regression
silently diverted them to the planner, the equality assertions would pass
vacuously.  Since the decorrelation pass, eq2/eq7/eq10/eq15 are pinned
native (group-by rewrites, unnesting, and correlated scalar subqueries
replace LATERAL).
"""

import random
import warnings

import pytest

from repro.backends.exec import (
    BackendFallbackWarning,
    available_backends,
)
from repro.core import builder as b
from repro.core import nodes as n
from repro.core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import Database, NULL, generators
from repro.engine import evaluate
from repro.errors import ArcError
from repro.workloads import instances, paper_examples, sweeps


def run_sqlite(node, db, conventions):
    """Evaluate on the sqlite backend; returns (result, fell_back)."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        result = evaluate(node, db, conventions, backend="sqlite")
    fell_back = any(
        issubclass(w.category, BackendFallbackWarning) for w in caught
    )
    return result, fell_back


def assert_three_way(node, db, conventions, *, expect_native=None):
    """reference ≡ planner ≡ decorrelated ≡ sqlite (or equal errors)."""
    try:
        reference = evaluate(node, db, conventions, planner=False)
    except ArcError as exc:
        with pytest.raises(type(exc)):
            evaluate(node, db, conventions, planner=True)
        return
    planner = evaluate(node, db, conventions, planner=True)
    per_row = evaluate(node, db, conventions, decorrelate=False)
    sqlite_result, fell_back = run_sqlite(node, db, conventions)
    assert planner == reference
    assert per_row == reference
    assert sqlite_result == reference
    if expect_native is not None:
        assert fell_back == (not expect_native)


def _rs_db():
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30), (3, 30)])
    db.create("S", ("B", "C"), [(10, 0), (20, 5), (30, 0), (40, 1)])
    return db


def _matrix_db():
    db = Database()
    db.add(generators.sparse_matrix("A", 4, 5, density=0.5, seed=3))
    db.add(generators.sparse_matrix("B", 5, 4, density=0.5, seed=4))
    return db


# (workload key, database factory, must-run-natively-on-sqlite)
PAPER_CASES = [
    ("eq1", _rs_db, True),
    ("eq2", instances.lateral_instance, True),  # correlated lateral, unnested
    ("eq3", lambda: sweeps.size_sweep_database(40, seed=9), True),
    ("eq7", lambda: sweeps.size_sweep_database(40, seed=9), True),  # scalar subquery
    ("eq8", instances.payroll_instance, True),  # uncorrelated derived table
    ("eq10", instances.payroll_instance, True),  # FIO group-by rewrite
    ("eq12", instances.payroll_instance, True),
    ("eq13", lambda: instances.boolean_instance(satisfied=True), True),
    ("eq13", lambda: instances.boolean_instance(satisfied=False), True),
    ("eq14", lambda: instances.boolean_instance(satisfied=True), True),
    ("eq14", lambda: instances.boolean_instance(satisfied=False), True),
    ("eq15", instances.conventions_instance, True),  # scalar subquery
    ("eq16", instances.ancestor_instance, True),  # WITH RECURSIVE
    ("eq17", lambda: instances.not_in_instance(with_null=True), False),  # 3VL hazard
    ("eq17", lambda: instances.not_in_instance(with_null=False), True),
    ("not_in_3vl", lambda: instances.not_in_instance(with_null=True), False),
    ("not_in_3vl", lambda: instances.not_in_instance(with_null=False), True),
    ("eq18", instances.outer_join_instance, True),  # LEFT JOIN
    ("eq19", instances.arithmetic_instance, True),
    ("eq20", instances.arithmetic_instance, False),  # external Minus
    ("eq21", instances.arithmetic_instance, False),  # externals
    ("eq22", instances.likes_instance, True),  # nested NOT EXISTS
    ("eq23_24", instances.likes_instance, False),  # abstract Sub definition
    ("eq25_arc", _matrix_db, True),
    ("eq26", _matrix_db, False),  # external '*'
    ("eq27", instances.count_bug_instance, True),  # correlated scalar subquery
    ("eq27", instances.count_bug_populated, True),
    ("eq28", instances.count_bug_instance, True),
    ("eq28", instances.count_bug_populated, True),
    ("eq29", instances.count_bug_instance, True),
    ("eq29", instances.count_bug_populated, True),
]


@pytest.mark.parametrize(
    "key,db_factory,native",
    PAPER_CASES,
    ids=[f"{key}-{i}" for i, (key, _, _) in enumerate(PAPER_CASES)],
)
def test_paper_workloads_three_way_sql_conventions(key, db_factory, native):
    node = parse(paper_examples.ARC[key])
    assert_three_way(node, db_factory(), SQL_CONVENTIONS, expect_native=native)


def test_sqlite_covers_most_paper_workloads_natively():
    """The native set is the backend's raison d'être; keep it honest.

    Decorrelation lifted the correlated-lateral gap (eq2/eq7/eq10/eq15), so
    the only remaining fallbacks are externals/abstract relations and the
    3VL NOT-EXISTS hazard.
    """
    native = sum(1 for _, _, flag in PAPER_CASES if flag)
    assert native >= (2 * len(PAPER_CASES)) // 3
    pinned_native = {
        key for key, _, flag in PAPER_CASES if flag
    }
    assert {"eq2", "eq7", "eq10", "eq15"} <= pinned_native


# -- correlated-lateral decorrelation (FOI → FIO) ------------------------------


def test_correlated_lateral_family_three_way():
    """Seeded FOI family (correlation arity, aggregate, γ∅ vs γ-keys, empty
    outer groups): reference ≡ planner ≡ decorrelated ≡ sqlite, natively."""
    rng = random.Random(4321)
    for trial in range(6):
        arity = rng.choice([1, 1, 2])
        agg = rng.choice(["sum", "count", "avg", "min", "max"])
        grouped = rng.random() < 0.5
        query = sweeps.correlated_aggregate_query(
            arity=arity, agg=agg, grouped=grouped
        )
        db = sweeps.correlated_sweep_database(
            rng.randint(0, 25), rng.randint(0, 40), arity=arity, seed=trial
        )
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_correlated_lateral_empty_groups_three_way():
    """All outer keys miss the inner relation: the γ∅ scope must still emit
    one row per outer row (count → 0, sum → NULL) on every engine —
    SQLite's correlated scalar subquery and the planner's probe-miss
    compensation both reproduce the count bug's correct answer."""
    db = sweeps.correlated_sweep_database(8, 12, seed=5, miss_rate=1.0)
    for agg in ("count", "sum"):
        query = sweeps.correlated_aggregate_query(agg=agg)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_correlated_lateral_null_keys_three_way():
    """NULL correlation keys: the planner probes an UNKNOWN-aware
    tri-bucket index under 3VL, while SQLite evaluates the hoisted
    equality itself — both must agree with the reference."""
    for grouped in (False, True):
        query = sweeps.correlated_aggregate_query(agg="sum", grouped=grouped)
        db = sweeps.correlated_sweep_database(20, 30, seed=11, null_rate=0.3)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_theta_correlated_family_three_way():
    """Seeded θ-band family (E27): reference ≡ planner ≡ per-row ≡ sqlite,
    natively — γ∅ θ aggregates render as correlated scalar subqueries and
    the non-grouped slice shape unnests, so SQLite needs no LATERAL."""
    rng = random.Random(8128)
    for trial in range(8):
        op = rng.choice(["<", "<=", ">", ">="])
        eq_arity = rng.choice([0, 0, 1])
        db = sweeps.theta_sweep_database(
            rng.randint(0, 20),
            rng.randint(0, 30),
            eq_arity=eq_arity,
            seed=trial,
            null_rate=rng.choice([0.0, 0.0, 0.3]),
            null_band_rate=rng.choice([0.0, 0.25]),
        )
        if trial % 3 == 2:
            query = sweeps.theta_rows_query(op=op)
        else:
            query = sweeps.theta_aggregate_query(
                op=op, agg=rng.choice(["sum", "count", "avg", "min", "max"]),
                eq_arity=eq_arity,
            )
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_theta_join_inner_three_way():
    query = sweeps.theta_join_aggregate_query()
    db = sweeps.theta_sweep_database(25, 25, seed=6, with_join=True)
    assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_theta_all_probes_empty_three_way():
    """Every outer band value sits below the whole inner band: γ∅ must
    still emit one row per outer row (count → 0, sum → NULL) on every
    engine — the band path synthesizes it from the empty prefix."""
    db = Database()
    db.create("R", ("A", "misc"), [(0, 0), (0, 1), (0, 2)])
    db.create("S", ("A", "B"), [(5, 1), (6, 2), (7, 3)])
    for agg in ("count", "sum"):
        query = sweeps.theta_aggregate_query(op="<", agg=agg)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


# -- capability fallback under non-SQL conventions ----------------------------


@pytest.mark.parametrize(
    "conv_name,conventions",
    [("set", SET_CONVENTIONS), ("souffle", SOUFFLE_CONVENTIONS)],
)
def test_non_sql_conventions_fall_back_with_warning(conv_name, conventions):
    node = parse(paper_examples.ARC["eq3"])
    db = sweeps.size_sweep_database(30, seed=2)
    reference = evaluate(node, db, conventions, planner=False)
    with pytest.warns(BackendFallbackWarning, match="conventions|semantics|NULL"):
        result = evaluate(node, db, conventions, backend="sqlite")
    assert result == reference


@pytest.mark.parametrize(
    "conventions", [SET_CONVENTIONS, SOUFFLE_CONVENTIONS], ids=["set", "souffle"]
)
def test_fallback_paths_agree_across_paper_workloads(conventions):
    for key, db_factory in [
        ("eq1", _rs_db),
        ("eq15", instances.conventions_instance),
        ("eq16", instances.ancestor_instance),
        ("eq27", instances.count_bug_instance),
    ]:
        node = parse(paper_examples.ARC[key])
        db = db_factory()
        reference = evaluate(node, db, conventions, planner=False)
        result, fell_back = run_sqlite(node, db, conventions)
        assert fell_back  # non-SQL conventions are never offloaded
        assert result == reference


# -- randomized chain joins ----------------------------------------------------


def test_random_chain_joins_three_way():
    rng = random.Random(71)
    for trial in range(10):
        width = rng.randint(2, 4)
        rows = rng.randint(4, 30 // width)
        domain = rng.randint(2, 10)
        db = generators.chain_database(width, rows, domain=domain, seed=trial)
        query = sweeps.join_chain_query(width)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_chain_join_with_nulls_three_way():
    db = Database()
    db.add(
        generators.binary_relation(
            "R0", 15, domain=4, seed=1, attrs=("A", "B"), null_rate=0.3
        )
    )
    db.add(
        generators.binary_relation(
            "R1", 15, domain=4, seed=2, attrs=("B", "C"), null_rate=0.3
        )
    )
    # No negation: UNKNOWN joins filter identically in ARC and SQL.
    assert_three_way(
        sweeps.join_chain_query(2), db, SQL_CONVENTIONS, expect_native=True
    )


def test_constant_equality_probe_three_way():
    db = generators.chain_database(2, 20, domain=5, seed=8)
    query = parse(
        "{Q(out) | ∃r0 ∈ R0, r1 ∈ R1[Q.out = r1.C ∧ r0.B = r1.B ∧ r0.A = 3]}"
    )
    assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


# -- randomized grouping queries ----------------------------------------------

AGG_FUNCS = ["sum", "count", "avg", "min", "max", "sumdistinct", "countdistinct"]


def _grouped_query(func, *, grouped_key=True, having=False):
    agg = n.AggCall(func, b.attr2("r", "B"))
    conjuncts = [n.Comparison(n.Attr("Q", "v"), "=", agg)]
    attrs = ["v"]
    if grouped_key:
        conjuncts.insert(0, b.eq(b.attr2("Q", "A"), b.attr2("r", "A")))
        attrs.insert(0, "A")
        grouping = b.grouping(b.attr2("r", "A"))
    else:
        grouping = b.grouping()
    if having:
        conjuncts.append(n.Comparison(n.AggCall("count", None), ">", n.Const(1)))
    return b.collection(
        "Q", attrs, b.exists([b.bind("r", "R")], b.conj(*conjuncts), grouping=grouping)
    )


@pytest.mark.parametrize("func", AGG_FUNCS)
@pytest.mark.parametrize("null_rate", [0.0, 0.4])
def test_random_grouped_aggregates_three_way(func, null_rate):
    rng = random.Random(hash(func) % 1000)
    for trial in range(3):
        db = Database()
        db.add(
            generators.binary_relation(
                "R", rng.randint(0, 40), domain=6, seed=trial, null_rate=null_rate
            )
        )
        for grouped_key in (True, False):
            query = _grouped_query(func, grouped_key=grouped_key)
            assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_grouped_with_having_three_way():
    db = Database()
    db.add(generators.binary_relation("R", 30, domain=4, seed=5, null_rate=0.2))
    for grouped_key in (True, False):
        query = _grouped_query("sum", grouped_key=grouped_key, having=True)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_grouped_over_empty_relation_three_way():
    db = Database()
    db.create("R", ("A", "B"), [])
    for grouped_key in (True, False):
        for func in ("sum", "count"):
            query = _grouped_query(func, grouped_key=grouped_key)
            assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_grouped_all_null_group_three_way():
    db = Database()
    db.create("R", ("A", "B"), [(1, NULL), (1, NULL), (2, 5)])
    for func in AGG_FUNCS:
        query = _grouped_query(func)
        assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


# -- recursion and mutation ----------------------------------------------------


def test_transitive_closure_three_way():
    db = generators.parent_edges(30, seed=21, extra_edges=10)
    query = parse(paper_examples.ARC["eq16"])
    assert_three_way(query, db, SQL_CONVENTIONS, expect_native=True)


def test_sqlite_tracks_relation_mutation():
    """Mutating a relation changes its fingerprint, forcing a fresh load."""
    db = sweeps.size_sweep_database(50, seed=3)
    query = sweeps.grouped_aggregate_query()
    first, fell_back = run_sqlite(query, db, SQL_CONVENTIONS)
    assert not fell_back
    assert first == evaluate(query, db, SQL_CONVENTIONS, planner=False)
    db["R"].add((99, 7))
    second, _ = run_sqlite(query, db, SQL_CONVENTIONS)
    assert second == evaluate(query, db, SQL_CONVENTIONS, planner=False)
    assert first != second


def test_registry_exposes_all_three_backends():
    assert {"reference", "planner", "sqlite"} <= set(available_backends())
