"""Unit tests for the SQLite offload engine and the backend registry."""

import sqlite3
import warnings

import pytest

from repro.backends.exec import (
    BackendFallbackWarning,
    BackendUnsupported,
    available_backends,
    catalog_fingerprint,
    clear_catalog_cache,
    connect_catalog,
    get_backend,
    run_backend,
)
from repro.backends.exec import sqlite_exec
from repro.core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import Database, NULL, Relation, Truth, csvio
from repro.engine import evaluate
from repro.errors import EvaluationError

IDENTITY = "{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}"
ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_catalog_cache()
    yield
    clear_catalog_cache()


def _mixed_db():
    db = Database()
    db.create(
        "R",
        ("A", "B"),
        [(1, 1.5), (1, 1.5), ("x", NULL), (NULL, "y")],  # bag duplicate + NULLs
    )
    return db


class TestValueMapping:
    def test_round_trip_preserves_types_nulls_and_multiplicity(self):
        db = _mixed_db()
        result = evaluate(parse(IDENTITY), db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(parse(IDENTITY), db, SQL_CONVENTIONS, planner=False)
        assert result.multiplicity({"A": 1, "B": 1.5}) == 2
        assert any(r["B"] is NULL for r in result.iter_distinct())

    def test_nan_values_are_rejected_not_silently_nulled(self):
        db = Database()
        db.create("R", ("A", "B"), [(float("nan"), 1)])
        with pytest.raises(BackendUnsupported, match="NaN"):
            connect_catalog(db)

    def test_unsupported_value_type_is_rejected(self):
        db = Database()
        db.create("R", ("A",), [((1, 2),)])  # a tuple-valued cell
        with pytest.raises(BackendUnsupported, match="value"):
            connect_catalog(db)

    def test_case_colliding_relation_names_are_rejected(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("r", ("A",), [(2,)])
        with pytest.raises(BackendUnsupported, match="collide"):
            connect_catalog(db)

    def test_meta_table_name_is_reserved(self, tmp_path):
        db = Database()
        db.create("__arc_catalog__", ("A",), [(1,)])
        with pytest.raises(BackendUnsupported, match="reserved"):
            connect_catalog(db, db_file=str(tmp_path / "c.db"))
        # Through dispatch, the collision falls back instead of crashing.
        query = parse("{Q(A) | ∃r ∈ __arc_catalog__[Q.A = r.A]}")
        with pytest.warns(BackendFallbackWarning):
            result = evaluate(
                query,
                db,
                SQL_CONVENTIONS,
                backend="sqlite",
                db_file=str(tmp_path / "c.db"),
            )
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)


class TestCatalogCache:
    def test_warm_cache_reuses_the_loaded_connection(self):
        db = _mixed_db()
        query = parse(IDENTITY)
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        loads = sqlite_exec.stats["loads"]
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert sqlite_exec.stats["loads"] == loads
        assert sqlite_exec.stats["hits"] >= 1

    def test_equal_catalogs_share_a_fingerprint(self):
        assert catalog_fingerprint(_mixed_db()) == catalog_fingerprint(_mixed_db())

    def test_mutation_changes_the_fingerprint(self):
        db = _mixed_db()
        before = catalog_fingerprint(db)
        db["R"].add((7, 7))
        assert catalog_fingerprint(db) != before

    def test_cache_is_bounded(self):
        for i in range(sqlite_exec._CACHE_LIMIT + 3):
            db = Database()
            db.create("R", ("A",), [(i,)])
            connect_catalog(db)
        assert len(sqlite_exec._connections) == sqlite_exec._CACHE_LIMIT


class TestDbFilePersistence:
    def test_file_catalog_reloads_only_on_fingerprint_change(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        db = _mixed_db()
        query = parse(IDENTITY)
        first = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        loads = sqlite_exec.stats["loads"]
        # Second call (fresh connection, same file): warm start, no reload.
        second = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        assert sqlite_exec.stats["loads"] == loads
        assert first == second
        # The tables really are on disk.
        conn = sqlite3.connect(path)
        assert conn.execute("select count(*) from R").fetchone()[0] == 4
        conn.close()
        # Mutation invalidates the stored fingerprint and reloads.
        db["R"].add((8, 8))
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        assert sqlite_exec.stats["loads"] == loads + 1


class TestCapabilities:
    def probe(self, text, db, conventions=SQL_CONVENTIONS):
        return get_backend("sqlite").capabilities(parse(text), conventions, db)

    def test_sql_conventions_fully_supported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        assert self.probe(IDENTITY, db) == []

    def test_non_sql_conventions_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        assert any("set" in p for p in self.probe(IDENTITY, db, SET_CONVENTIONS))
        problems = self.probe(IDENTITY, db, SOUFFLE_CONVENTIONS)
        assert any("two-valued" in p for p in problems)
        assert any("empty-aggregate" in p for p in problems)

    def test_externals_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        problems = self.probe(
            "{Q(A) | ∃r ∈ R, f ∈ Minus[Q.A = r.A ∧ f.left = r.A ∧ "
            "f.right = r.B ∧ f.out = 0]}",
            db,
        )
        assert any("Minus" in p for p in problems)

    def _rs_db(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        db.create("S", ("A", "B"), [(1, 2)])
        return db

    def test_decorrelatable_laterals_are_supported(self):
        # γ∅ aggregate scopes (any correlation) inline as scalar subqueries;
        # equality-correlated grouped scopes decorrelate to group-by joins;
        # non-grouped correlated scopes unnest — none needs LATERAL.
        db = self._rs_db()
        assert (
            self.probe(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
                "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}",
                db,
            )
            == []
        )
        assert (
            self.probe(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.A"
                "[s.A = r.A ∧ X.sm = sum(s.B) ∧ X.g = s.A]}"
                "[Q.A = r.A ∧ Q.sm = x.sm]}",
                db,
            )
            == []
        )
        assert (
            self.probe(
                "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃s ∈ S[Z.B = s.B ∧ "
                "s.A < r.A]}[Q.A = r.A ∧ Q.B = z.B]}",
                db,
            )
            == []
        )

    def test_theta_band_derived_table_runs_natively(self):
        # A non-grouped θ lateral that resists unnesting (its inner binding
        # is itself a collection) renders as an uncorrelated derived table
        # joined through the projected band key with the inequality — no
        # LATERAL, executed natively.
        db = self._rs_db()
        query = parse(
            "{Q(A, B) | ∃r ∈ R, z ∈ {Z(B) | ∃u ∈ {U(B) | ∃s ∈ S"
            "[U.B = s.B]}[Z.B = u.B ∧ u.B < r.A]}[Q.A = r.A ∧ Q.B = z.B]}"
        )
        assert get_backend("sqlite").capabilities(query, SQL_CONVENTIONS, db) == []
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            result = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)

    def test_non_equality_grouped_lateral_reported_specifically(self):
        # γ-keys + non-equality correlation: no group-by rewrite, no scalar
        # shape — the message must name the binding and the refusal, and
        # the refusal names the *predicate* (a band-eligible operator on a
        # named column), so the caller can tell it apart from truly unsafe
        # correlation shapes.
        problems = self.probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ s.A"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}",
            self._rs_db(),
        )
        assert any(
            "'x'" in p and "LATERAL" in p and "non-equality" in p
            and "< on s.A" in p
            for p in problems
        )

    def test_not_equal_lateral_names_the_unsafe_predicate(self):
        # <> is not band-indexable at all: the message names the operator
        # so band-eligible refusals (shape) and unsafe ones (operator) are
        # distinguishable.
        problems = self.probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.A"
            "[s.A <> r.A ∧ X.sm = sum(s.B) ∧ X.g = s.A]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}",
            self._rs_db(),
        )
        assert any(
            "'x'" in p and "<> on s.A" in p and "θ-band-indexable" in p
            for p in problems
        )

    def test_gamma_empty_having_lateral_reported_specifically(self):
        # γ∅ with an aggregate comparison filters the single group away, so
        # it is not a scalar (exactly-one-row) shape; the count bug forbids
        # the group-by rewrite even for the equality correlation.
        problems = self.probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A = r.A ∧ X.sm = sum(s.B) ∧ count(s.B) > 1]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}",
            self._rs_db(),
        )
        assert any(
            "'x'" in p and "count bug" in p and "aggregate comparison" in p
            for p in problems
        )

    def test_nested_correlated_lateral_reported_specifically(self):
        problems = self.probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, "
            "w ∈ {W(c) | ∃s2 ∈ S, γ ∅[s2.A = r.A ∧ W.c = count(s2.B)]}, γ s.A"
            "[s.A = r.A ∧ X.sm = sum(s.B) ∧ X.g = s.A ∧ w.c >= 0]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}",
            self._rs_db(),
        )
        assert any("'x'" in p and "nested" in p for p in problems)

    def test_chained_scalar_laterals_run_natively(self):
        # A γ∅ scalar binding referencing an earlier γ∅ scalar binding
        # renders the reference as a *nested* scalar subquery (the earlier
        # alias was eliminated from FROM), so the chain stays native.
        db = Database()
        db.create("R", ("K", "misc"), [(1, 0), (2, 1), (3, 2)])
        db.create("S", ("K", "B"), [(1, 5), (1, 7), (2, 11)])
        db.create("T", ("K", "B"), [(1, 3), (1, 9), (2, 4)])
        query = parse(
            "{Q(k, d) | ∃r ∈ R, "
            "x ∈ {X(v) | ∃s ∈ S, γ ∅[s.K = r.K ∧ X.v = sum(s.B)]}, "
            "y ∈ {Y(d) | ∃t ∈ T, γ ∅[t.K = r.K ∧ t.B < x.v ∧ "
            "Y.d = count(t.B)]}[Q.k = r.K ∧ Q.d = y.d]}"
        )
        assert get_backend("sqlite").capabilities(query, SQL_CONVENTIONS, db) == []
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            result = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)

    def test_join_annotated_scalar_binding_reported_specifically(self):
        # The renderer never scalar-inlines a binding that is an operand of
        # a join annotation, so the probe must report it (not promise
        # native execution and silently fall back at run time).
        db = self._rs_db()
        query = parse(
            "{Q(A, v) | ∃r ∈ R, x ∈ {X(v) | ∃s ∈ S, γ ∅"
            "[s.A = r.A ∧ X.v = sum(s.B)]}, left(r, x)"
            "[Q.A = r.A ∧ Q.v = x.v]}"
        )
        problems = get_backend("sqlite").capabilities(query, SQL_CONVENTIONS, db)
        assert any("'x'" in p and "join annotation" in p for p in problems)
        with pytest.warns(BackendFallbackWarning, match="join annotation"):
            result = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)

    def test_probe_honors_the_decorrelate_escape_hatch(self):
        # capabilities(decorrelate=False) must match run(decorrelate=False):
        # a decorrelatable lateral is reported (with the hatch as reason)
        # instead of promised native and then crashing on the LATERAL SQL.
        db = self._rs_db()
        query = parse(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm, g) | ∃s ∈ S, γ s.A"
            "[s.A = r.A ∧ X.sm = sum(s.B) ∧ X.g = s.A]}"
            "[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        engine = get_backend("sqlite")
        assert engine.capabilities(query, SQL_CONVENTIONS, db) == []
        problems = engine.capabilities(
            query, SQL_CONVENTIONS, db, decorrelate=False
        )
        assert any("decorrelation disabled" in p for p in problems)
        with pytest.raises(BackendUnsupported, match="decorrelation disabled"):
            run_backend(
                query,
                db,
                SQL_CONVENTIONS,
                "sqlite",
                fallback=False,
                decorrelate=False,
            )

    def test_fallback_warning_carries_the_specific_reasons(self):
        db = self._rs_db()
        query = parse(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ s.A"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        with pytest.warns(BackendFallbackWarning, match="non-equality") as record:
            result = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)
        fallback = [
            w.message
            for w in record
            if isinstance(w.message, BackendFallbackWarning)
        ][0]
        assert any("'x'" in reason for reason in fallback.reasons)

    def test_division_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        problems = self.probe("{Q(A) | ∃r ∈ R[Q.A = r.A / r.B]}", db)
        assert any("division" in p for p in problems)

    def test_negation_over_nulls_reported(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("S", ("A",), [(NULL,)])
        problems = self.probe(
            "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}", db
        )
        assert any("UNKNOWN" in p for p in problems)
        # Null-free data: the same query is offloadable.
        db2 = Database()
        db2.create("R", ("A",), [(1,)])
        db2.create("S", ("A",), [(2,)])
        assert (
            self.probe("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}", db2)
            == []
        )


class TestDispatch:
    def test_unknown_backend_raises(self):
        with pytest.raises(EvaluationError, match="unknown backend"):
            get_backend("duckdb")

    def test_available_backends(self):
        assert {"reference", "planner", "sqlite"} <= set(available_backends())

    def test_fallback_disabled_raises(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        with pytest.raises(BackendUnsupported):
            run_backend(
                parse(IDENTITY), db, SET_CONVENTIONS, "sqlite", fallback=False
            )

    def test_fallback_warns_and_matches_planner(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2), (1, 2)])
        with pytest.warns(BackendFallbackWarning):
            result = evaluate(parse(IDENTITY), db, SET_CONVENTIONS, backend="sqlite")
        assert result == evaluate(parse(IDENTITY), db, SET_CONVENTIONS)

    def test_runtime_rejection_falls_back(self):
        """Constructs the static probe cannot see (nonlinear recursion) still
        answer correctly via the runtime BackendUnsupported fallback."""
        db = Database()
        db.create("P", ("s", "t"), [("a", "b"), ("b", "c")])
        nonlinear = parse(
            "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃a1 ∈ A, a2 ∈ A[A.s = a1.s ∧ a1.t = a2.s ∧ A.t = a2.t]}"
        )
        with pytest.warns(BackendFallbackWarning, match="recursive"):
            result = evaluate(nonlinear, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(nonlinear, db, SQL_CONVENTIONS, planner=False)

    def test_sentence_returns_truth(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("S", ("A",), [(1,)])
        with warnings.catch_warnings():
            # Any fallback would fail the test (the legacy-kwarg
            # DeprecationWarning shim is exercised elsewhere).
            warnings.simplefilter("error", BackendFallbackWarning)
            result = evaluate(
                parse("∃r ∈ R[∃s ∈ S[s.A = r.A]]"),
                db,
                SQL_CONVENTIONS,
                backend="sqlite",
            )
        assert result is Truth.TRUE


class TestCli:
    def _write_csv(self, tmp_path, name, schema, rows):
        rel = Relation(name, schema, rows)
        path = tmp_path / f"{name.lower()}.csv"
        csvio.write_csv(rel, str(path))
        return f"{path}:{name}"

    def test_eval_backend_sqlite_from_csv(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10), (2, 20)])
        code = main(
            [
                "eval",
                "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}",
                "--db",
                spec,
                "--conventions",
                "sql",
                "--backend",
                "sqlite",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2" in out and "1" not in out.splitlines()[-1]

    def test_eval_recursive_program_on_sqlite_from_csv(self, tmp_path, capsys):
        """Acceptance: a WITH RECURSIVE program end-to-end from CSV."""
        from repro.cli import main

        spec = self._write_csv(
            tmp_path, "P", ("s", "t"), [("a", "b"), ("b", "c"), ("c", "d")]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            code = main(
                [
                    "eval",
                    ANCESTOR,
                    "--db",
                    spec,
                    "--conventions",
                    "sql",
                    "--backend",
                    "sqlite",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "a" in out and "d" in out
        assert out.count("\n") >= 6  # six closure pairs

    def test_eval_db_file_implies_sqlite(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10)])
        path = str(tmp_path / "catalog.db")
        code = main(
            [
                "eval",
                "{Q(A) | ∃r ∈ R[Q.A = r.A]}",
                "--db",
                spec,
                "--conventions",
                "sql",
                "--db-file",
                path,
            ]
        )
        assert code == 0
        conn = sqlite3.connect(path)
        assert conn.execute("select count(*) from R").fetchone()[0] == 1
        conn.close()

    def test_parser_exposes_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["eval", "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "--backend", "sqlite"]
        )
        assert args.backend == "sqlite"

    def test_conflicting_engine_flags_are_rejected(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10)])
        query = "{Q(A) | ∃r ∈ R[Q.A = r.A]}"
        assert (
            main(["eval", query, "--db", spec, "--no-planner", "--backend", "sqlite"])
            == 2
        )
        assert "--no-planner" in capsys.readouterr().err
        # --db-file with a non-sqlite backend would be silently ignored.
        assert (
            main(
                [
                    "eval",
                    query,
                    "--db",
                    spec,
                    "--backend",
                    "planner",
                    "--db-file",
                    str(tmp_path / "c.db"),
                ]
            )
            == 2
        )
        assert "--db-file" in capsys.readouterr().err
