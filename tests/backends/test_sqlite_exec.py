"""Unit tests for the SQLite offload engine and the backend registry."""

import sqlite3
import warnings

import pytest

from repro.backends.exec import (
    BackendFallbackWarning,
    BackendUnsupported,
    available_backends,
    catalog_fingerprint,
    clear_catalog_cache,
    connect_catalog,
    get_backend,
    run_backend,
)
from repro.backends.exec import sqlite_exec
from repro.core.conventions import (
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)
from repro.core.parser import parse
from repro.data import Database, NULL, Relation, Truth, csvio
from repro.engine import evaluate
from repro.errors import EvaluationError

IDENTITY = "{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}"
ANCESTOR = (
    "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
    "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_catalog_cache()
    yield
    clear_catalog_cache()


def _mixed_db():
    db = Database()
    db.create(
        "R",
        ("A", "B"),
        [(1, 1.5), (1, 1.5), ("x", NULL), (NULL, "y")],  # bag duplicate + NULLs
    )
    return db


class TestValueMapping:
    def test_round_trip_preserves_types_nulls_and_multiplicity(self):
        db = _mixed_db()
        result = evaluate(parse(IDENTITY), db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(parse(IDENTITY), db, SQL_CONVENTIONS, planner=False)
        assert result.multiplicity({"A": 1, "B": 1.5}) == 2
        assert any(r["B"] is NULL for r in result.iter_distinct())

    def test_nan_values_are_rejected_not_silently_nulled(self):
        db = Database()
        db.create("R", ("A", "B"), [(float("nan"), 1)])
        with pytest.raises(BackendUnsupported, match="NaN"):
            connect_catalog(db)

    def test_unsupported_value_type_is_rejected(self):
        db = Database()
        db.create("R", ("A",), [((1, 2),)])  # a tuple-valued cell
        with pytest.raises(BackendUnsupported, match="value"):
            connect_catalog(db)

    def test_case_colliding_relation_names_are_rejected(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("r", ("A",), [(2,)])
        with pytest.raises(BackendUnsupported, match="collide"):
            connect_catalog(db)

    def test_meta_table_name_is_reserved(self, tmp_path):
        db = Database()
        db.create("__arc_catalog__", ("A",), [(1,)])
        with pytest.raises(BackendUnsupported, match="reserved"):
            connect_catalog(db, db_file=str(tmp_path / "c.db"))
        # Through dispatch, the collision falls back instead of crashing.
        query = parse("{Q(A) | ∃r ∈ __arc_catalog__[Q.A = r.A]}")
        with pytest.warns(BackendFallbackWarning):
            result = evaluate(
                query,
                db,
                SQL_CONVENTIONS,
                backend="sqlite",
                db_file=str(tmp_path / "c.db"),
            )
        assert result == evaluate(query, db, SQL_CONVENTIONS, planner=False)


class TestCatalogCache:
    def test_warm_cache_reuses_the_loaded_connection(self):
        db = _mixed_db()
        query = parse(IDENTITY)
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        loads = sqlite_exec.stats["loads"]
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite")
        assert sqlite_exec.stats["loads"] == loads
        assert sqlite_exec.stats["hits"] >= 1

    def test_equal_catalogs_share_a_fingerprint(self):
        assert catalog_fingerprint(_mixed_db()) == catalog_fingerprint(_mixed_db())

    def test_mutation_changes_the_fingerprint(self):
        db = _mixed_db()
        before = catalog_fingerprint(db)
        db["R"].add((7, 7))
        assert catalog_fingerprint(db) != before

    def test_cache_is_bounded(self):
        for i in range(sqlite_exec._CACHE_LIMIT + 3):
            db = Database()
            db.create("R", ("A",), [(i,)])
            connect_catalog(db)
        assert len(sqlite_exec._connections) == sqlite_exec._CACHE_LIMIT


class TestDbFilePersistence:
    def test_file_catalog_reloads_only_on_fingerprint_change(self, tmp_path):
        path = str(tmp_path / "catalog.db")
        db = _mixed_db()
        query = parse(IDENTITY)
        first = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        loads = sqlite_exec.stats["loads"]
        # Second call (fresh connection, same file): warm start, no reload.
        second = evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        assert sqlite_exec.stats["loads"] == loads
        assert first == second
        # The tables really are on disk.
        conn = sqlite3.connect(path)
        assert conn.execute("select count(*) from R").fetchone()[0] == 4
        conn.close()
        # Mutation invalidates the stored fingerprint and reloads.
        db["R"].add((8, 8))
        evaluate(query, db, SQL_CONVENTIONS, backend="sqlite", db_file=path)
        assert sqlite_exec.stats["loads"] == loads + 1


class TestCapabilities:
    def probe(self, text, db, conventions=SQL_CONVENTIONS):
        return get_backend("sqlite").capabilities(parse(text), conventions, db)

    def test_sql_conventions_fully_supported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        assert self.probe(IDENTITY, db) == []

    def test_non_sql_conventions_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        assert any("set" in p for p in self.probe(IDENTITY, db, SET_CONVENTIONS))
        problems = self.probe(IDENTITY, db, SOUFFLE_CONVENTIONS)
        assert any("two-valued" in p for p in problems)
        assert any("empty-aggregate" in p for p in problems)

    def test_externals_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        problems = self.probe(
            "{Q(A) | ∃r ∈ R, f ∈ Minus[Q.A = r.A ∧ f.left = r.A ∧ "
            "f.right = r.B ∧ f.out = 0]}",
            db,
        )
        assert any("Minus" in p for p in problems)

    def test_correlated_lateral_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        db.create("S", ("A", "B"), [(1, 2)])
        problems = self.probe(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}",
            db,
        )
        assert any("LATERAL" in p for p in problems)

    def test_division_reported(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        problems = self.probe("{Q(A) | ∃r ∈ R[Q.A = r.A / r.B]}", db)
        assert any("division" in p for p in problems)

    def test_negation_over_nulls_reported(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("S", ("A",), [(NULL,)])
        problems = self.probe(
            "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}", db
        )
        assert any("UNKNOWN" in p for p in problems)
        # Null-free data: the same query is offloadable.
        db2 = Database()
        db2.create("R", ("A",), [(1,)])
        db2.create("S", ("A",), [(2,)])
        assert (
            self.probe("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}", db2)
            == []
        )


class TestDispatch:
    def test_unknown_backend_raises(self):
        with pytest.raises(EvaluationError, match="unknown backend"):
            get_backend("duckdb")

    def test_available_backends(self):
        assert {"reference", "planner", "sqlite"} <= set(available_backends())

    def test_fallback_disabled_raises(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2)])
        with pytest.raises(BackendUnsupported):
            run_backend(
                parse(IDENTITY), db, SET_CONVENTIONS, "sqlite", fallback=False
            )

    def test_fallback_warns_and_matches_planner(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2), (1, 2)])
        with pytest.warns(BackendFallbackWarning):
            result = evaluate(parse(IDENTITY), db, SET_CONVENTIONS, backend="sqlite")
        assert result == evaluate(parse(IDENTITY), db, SET_CONVENTIONS)

    def test_runtime_rejection_falls_back(self):
        """Constructs the static probe cannot see (nonlinear recursion) still
        answer correctly via the runtime BackendUnsupported fallback."""
        db = Database()
        db.create("P", ("s", "t"), [("a", "b"), ("b", "c")])
        nonlinear = parse(
            "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃a1 ∈ A, a2 ∈ A[A.s = a1.s ∧ a1.t = a2.s ∧ A.t = a2.t]}"
        )
        with pytest.warns(BackendFallbackWarning, match="recursive"):
            result = evaluate(nonlinear, db, SQL_CONVENTIONS, backend="sqlite")
        assert result == evaluate(nonlinear, db, SQL_CONVENTIONS, planner=False)

    def test_sentence_returns_truth(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("S", ("A",), [(1,)])
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # any fallback would fail the test
            result = evaluate(
                parse("∃r ∈ R[∃s ∈ S[s.A = r.A]]"),
                db,
                SQL_CONVENTIONS,
                backend="sqlite",
            )
        assert result is Truth.TRUE


class TestCli:
    def _write_csv(self, tmp_path, name, schema, rows):
        rel = Relation(name, schema, rows)
        path = tmp_path / f"{name.lower()}.csv"
        csvio.write_csv(rel, str(path))
        return f"{path}:{name}"

    def test_eval_backend_sqlite_from_csv(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10), (2, 20)])
        code = main(
            [
                "eval",
                "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}",
                "--db",
                spec,
                "--conventions",
                "sql",
                "--backend",
                "sqlite",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2" in out and "1" not in out.splitlines()[-1]

    def test_eval_recursive_program_on_sqlite_from_csv(self, tmp_path, capsys):
        """Acceptance: a WITH RECURSIVE program end-to-end from CSV."""
        from repro.cli import main

        spec = self._write_csv(
            tmp_path, "P", ("s", "t"), [("a", "b"), ("b", "c"), ("c", "d")]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error", BackendFallbackWarning)
            code = main(
                [
                    "eval",
                    ANCESTOR,
                    "--db",
                    spec,
                    "--conventions",
                    "sql",
                    "--backend",
                    "sqlite",
                ]
            )
        assert code == 0
        out = capsys.readouterr().out
        assert "a" in out and "d" in out
        assert out.count("\n") >= 6  # six closure pairs

    def test_eval_db_file_implies_sqlite(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10)])
        path = str(tmp_path / "catalog.db")
        code = main(
            [
                "eval",
                "{Q(A) | ∃r ∈ R[Q.A = r.A]}",
                "--db",
                spec,
                "--conventions",
                "sql",
                "--db-file",
                path,
            ]
        )
        assert code == 0
        conn = sqlite3.connect(path)
        assert conn.execute("select count(*) from R").fetchone()[0] == 1
        conn.close()

    def test_parser_exposes_backend_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["eval", "{Q(A) | ∃r ∈ R[Q.A = r.A]}", "--backend", "sqlite"]
        )
        assert args.backend == "sqlite"

    def test_conflicting_engine_flags_are_rejected(self, tmp_path, capsys):
        from repro.cli import main

        spec = self._write_csv(tmp_path, "R", ("A", "B"), [(1, 10)])
        query = "{Q(A) | ∃r ∈ R[Q.A = r.A]}"
        assert (
            main(["eval", query, "--db", spec, "--no-planner", "--backend", "sqlite"])
            == 2
        )
        assert "--no-planner" in capsys.readouterr().err
        # --db-file with a non-sqlite backend would be silently ignored.
        assert (
            main(
                [
                    "eval",
                    query,
                    "--db",
                    spec,
                    "--backend",
                    "planner",
                    "--db-file",
                    str(tmp_path / "c.db"),
                ]
            )
            == 2
        )
        assert "--db-file" in capsys.readouterr().err
