"""ARC -> SQL rendering: shape checks plus execution round-trips."""

import pytest

from repro.backends.sql_render import to_sql
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.errors import RewriteError
from repro.frontends.sql import to_arc


def roundtrip_equal(arc_text, db, conventions=SQL_CONVENTIONS):
    """Evaluate an ARC query and its SQL rendering; compare results."""
    arc = parse(arc_text)
    sql = to_sql(arc)
    back = to_arc(sql, database=db)
    direct = evaluate(arc, db, conventions)
    via_sql = evaluate(back, db, conventions)
    assert direct == via_sql, sql
    return sql


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"), [(1, 10), (1, 20), (2, 5)])
    database.create("S", ("A", "B"), [(0, 7), (1, 3)])
    database.create("R2", ("id", "q"), [(9, 0), (1, 1)])
    database.create("S2", ("id", "d"), [(1, "x")])
    return database


class TestShapes:
    def test_projection(self):
        sql = to_sql(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        assert sql.splitlines()[0] == "select r.A as A"

    def test_group_by(self):
        sql = to_sql(parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"))
        assert "group by r.A" in sql
        assert "sum(r.B) as sm" in sql

    def test_distinct_for_dedup_grouping(self):
        sql = to_sql(parse("{Q(A) | ∃r ∈ R, γ r.A[Q.A = r.A]}"))
        assert sql.startswith("select distinct")

    def test_not_exists(self):
        sql = to_sql(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}"))
        assert "not exists" in sql

    def test_scalar_subquery_for_boolean_gamma(self):
        sql = to_sql(
            parse(
                "{Q(id) | ∃r ∈ R2[Q.id = r.id ∧ "
                "∃s ∈ S2, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
            )
        )
        assert "r.q = (" in sql and "select count(s.d)" in sql

    def test_correlated_gamma_empty_renders_scalar_subquery(self):
        # A correlated γ∅ aggregate-only scope is the paper's Fig. 13a
        # shape: one row per outer row, rendered as a correlated scalar
        # subquery instead of a LATERAL derived table (so engines without
        # LATERAL execute it).
        sql = to_sql(
            parse(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
                "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
            )
        )
        assert "lateral" not in sql
        assert "(\n   select sum(s.B)" in sql

    def test_lateral(self):
        # A correlated scope that is neither γ∅-scalar nor decorrelated by
        # the renderer (grouping keys) still needs the lateral keyword.
        sql = to_sql(
            parse(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ s.A"
                "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
            )
        )
        assert "lateral (" in sql

    def test_uncorrelated_derived_table_has_no_lateral(self):
        # No reference to an outer binding: a plain derived table, which
        # engines without LATERAL (e.g. SQLite) can execute.
        sql = to_sql(
            parse(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
                "[X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
            )
        )
        assert "lateral" not in sql
        assert ") x" in sql

    def test_shadowed_inner_variable_does_not_hide_correlation(self):
        # The sub-subquery rebinds r; the outer-referencing `s.A < r.A` in
        # the middle (grouped, so not scalar-renderable) scope is still
        # correlated, so lateral must survive (a scope-insensitive
        # free-variable analysis would drop it).
        sql = to_sql(
            parse(
                "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, "
                "y ∈ {Y(c) | ∃r ∈ R2, γ ∅[Y.c = count(r.A)]}, γ s.A"
                "[s.A < r.A ∧ X.sm = sum(s.B) ∧ y.c >= 0]}"
                "[Q.A = r.A ∧ Q.sm = x.sm]}"
            )
        )
        assert "lateral (" in sql
        from repro.backends.sql_render import free_variables

        inner = parse(
            "{X(sm) | ∃s ∈ S, y ∈ {Y(c) | ∃r ∈ R2, γ ∅[Y.c = count(r.A)]}, "
            "γ ∅[s.A = r.A ∧ X.sm = sum(s.B)]}"
        )
        assert free_variables(inner) == {"r"}

    def test_left_join_with_literal_leaf(self):
        sql = to_sql(
            parse(
                "{Q(m, n) | ∃r ∈ R3, s ∈ S3, left(r, inner(11, s))"
                "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
            )
        )
        assert "left join" in sql
        assert "r.h = 11" in sql  # re-materialized as ON conjunct

    def test_union_all(self):
        sql = to_sql(parse("{Q(v) | ∃r ∈ R[Q.v = r.A] ∨ ∃s ∈ S[Q.v = s.A]}"))
        assert "union all" in sql

    def test_sentence(self):
        sql = to_sql(parse("∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]"))
        assert sql.startswith("select exists (")

    def test_negated_sentence_is_not_exists(self):
        # ¬∃ must render as `select not exists (...)` directly: wrapping the
        # negation in a further EXISTS would always be true, because the
        # inner boolean select always yields its one row.
        sql = to_sql(parse("¬∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q > count(s.d)]]"))
        assert sql.startswith("select not exists (")
        assert "exists (select not" not in sql

    def test_recursive_program_with_recursive(self):
        program = parse(
            "A := {A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]} ; main A"
        )
        sql = to_sql(program)
        assert sql.startswith("with recursive A(s, t) as (")
        # Recursive disjuncts iterate a *set-based* fixpoint (Section 2.9):
        # UNION, not UNION ALL, so the SQL terminates on cyclic data.
        assert "union all" not in sql
        assert "\nunion\n" in sql

    def test_nonrecursive_program_plain_with(self):
        program = parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        sql = to_sql(program)
        assert sql.startswith("with V(A) as (")

    def test_aggregate_comparison_becomes_having(self):
        sql = to_sql(
            parse("{Q(A) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ sum(r.B) > 10]}")
        )
        assert "having sum(r.B) > 10" in sql

    def test_count_distinct(self):
        sql = to_sql(parse("{Q(c) | ∃r ∈ R, γ ∅[Q.c = countdistinct(r.A)]}"))
        assert "count(distinct r.A)" in sql

    def test_unassigned_head_raises(self):
        with pytest.raises(RewriteError):
            to_sql(parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A]}"))


class TestExecutionRoundTrips:
    def test_join(self, db):
        roundtrip_equal("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B > s.B]}", db)

    def test_grouped(self, db):
        roundtrip_equal(
            "{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}", db
        )

    def test_lateral_foi(self, db):
        roundtrip_equal(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}",
            db,
        )

    def test_antijoin(self, db):
        roundtrip_equal("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}", db)

    def test_count_bug_v1(self, db):
        roundtrip_equal(
            "{Q(id) | ∃r ∈ R2[Q.id = r.id ∧ "
            "∃s ∈ S2, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}",
            db,
        )

    def test_union(self, db):
        roundtrip_equal("{Q(v) | ∃r ∈ R[Q.v = r.A] ∨ ∃s ∈ S[Q.v = s.A]}", db)

    def test_is_null(self, db):
        from repro.data import NULL

        db.create("N", ("A",), [(1,), (NULL,)])
        roundtrip_equal("{Q(K) | ∃x ∈ N[Q.K = 1 ∧ x.A is null]}", db)

    def test_outer_join(self):
        database = Database()
        database.create("R3", ("m", "y", "h"), [(1, 100, 11), (2, 200, 12)])
        database.create("S3", ("y", "n"), [(100, "x"), (200, "w")])
        roundtrip_equal(
            "{Q(m, n) | ∃r ∈ R3, s ∈ S3, left(r, inner(11, s))"
            "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}",
            database,
        )
