"""SQL -> ARC translation: pattern shapes and execution results."""

import pytest

from repro.backends.comprehension import render
from repro.core import nodes as n
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.core.validator import validate
from repro.data import Database, NULL
from repro.engine import evaluate
from repro.errors import ParseError
from repro.frontends.sql import to_arc

from ..conftest import rows_as_tuples


def check(sql, db, expected_rows=None, conventions=SQL_CONVENTIONS):
    arc = to_arc(sql, database=db)
    report = validate(arc, database=db)
    assert report.ok, [str(i) for i in report.issues]
    result = evaluate(arc, db, conventions)
    if expected_rows is not None:
        assert rows_as_tuples(result) == expected_rows
    return arc, result


class TestBasics:
    def test_projection(self, rs_db):
        check("select R.A from R", rs_db, [(1,), (2,), (3,)])

    def test_where(self, rs_db):
        check("select S.B from S where S.C = 0", rs_db, [(10,), (30,)])

    def test_join(self, rs_db):
        check(
            "select R.A, S.C from R, S where R.B = S.B",
            rs_db,
            [(1, 0), (2, 5), (3, 0)],
        )

    def test_explicit_inner_join(self, rs_db):
        arc, result = check(
            "select R.A from R join S on R.B = S.B", rs_db, [(1,), (2,), (3,)]
        )

    def test_alias(self, rs_db):
        check("select x.A from R x where x.A = 1", rs_db, [(1,)])

    def test_unqualified_with_schema(self, rs_db):
        check("select A from R where A > 1", rs_db, [(2,), (3,)])

    def test_unqualified_without_schema_single_table(self):
        arc = to_arc("select A from R")
        assert isinstance(arc, n.Collection)

    def test_ambiguous_unqualified(self, grouped_db):
        with pytest.raises(ParseError, match="ambiguous"):
            to_arc("select A from R, S", database=grouped_db)

    def test_arithmetic_item(self, rs_db):
        check("select R.A * 10 as v from R where R.A = 1", rs_db, [(10,)])

    def test_distinct(self, grouped_db):
        check("select distinct R.A from R", grouped_db, [(1,), (2,)])


class TestAggregation:
    def test_group_by_fio_pattern(self, grouped_db):
        arc, result = check(
            "select R.A, sum(R.B) sm from R group by R.A",
            grouped_db,
            [(1, 30), (2, 5)],
        )
        expected = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        from repro.analysis import same_pattern

        assert same_pattern(arc, expected)

    def test_aggregate_without_group_by(self, grouped_db):
        arc, result = check("select sum(R.B) sm from R", grouped_db, [(35,)])
        assert arc.body.grouping is not None
        assert arc.body.grouping.keys == ()

    def test_count_star(self, grouped_db):
        check("select count(*) c from R", grouped_db, [(3,)])

    def test_count_distinct(self, grouped_db):
        check("select count(distinct R.A) c from R", grouped_db, [(2,)])

    def test_having_wrapper_pattern(self, payroll_db):
        arc, result = check(
            "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
            "group by R.dept having sum(S.sal) > 100",
            payroll_db,
            [("cs", 55.0)],
        )
        # eq. (8): an outer scope selecting from an inner grouped collection.
        assert isinstance(arc.body.bindings[0].source, n.Collection)

    def test_having_on_unprojected_key(self, payroll_db):
        arc, result = check(
            "select avg(S.sal) av from R, S where R.empl = S.empl "
            "group by R.dept having R.dept = 'cs'",
            payroll_db,
            [(55.0,)],
        )


class TestSubqueries:
    def test_exists(self, rs_db):
        check(
            "select R.A from R where exists (select 1 from S where S.B = R.B and S.C = 0)",
            rs_db,
            [(1,), (3,)],
        )

    def test_not_exists(self, rs_db):
        check(
            "select R.A from R where not exists (select 1 from S where S.B = R.B and S.C = 0)",
            rs_db,
            [(2,)],
        )

    def test_in(self, rs_db):
        check(
            "select R.A from R where R.B in (select S.B from S where S.C = 0)",
            rs_db,
            [(1,), (3,)],
        )

    def test_not_in_null_semantics(self):
        db = Database()
        db.create("R", ("A",), [(1,), (2,)])
        db.create("S", ("A",), [(1,), (NULL,)])
        arc, result = check(
            "select R.A from R where R.A not in (select S.A from S)", db
        )
        assert result.is_empty()

    def test_scalar_in_where_is_boolean_gamma(self, count_bug_db):
        arc, result = check(
            "select R.id from R where R.q = "
            "(select count(S.d) from S where S.id = R.id)",
            count_bug_db,
            [(9,)],
        )
        inner = [f for f in n.conjuncts(arc.body.body) if isinstance(f, n.Quantifier)]
        assert inner and inner[0].grouping is not None
        assert inner[0].grouping.keys == ()

    def test_scalar_in_select_is_lateral(self, grouped_db):
        arc, result = check(
            "select R.A, (select sum(S.B) sm from S where S.A < R.A) sm from R",
            grouped_db,
            [(1, 7), (1, 7), (2, 10)],
        )
        laterals = [
            b for b in arc.body.bindings if isinstance(b.source, n.Collection)
        ]
        assert laterals

    def test_correlated_lateral_join(self, grouped_db):
        check(
            "select R.A, X.sm from R join lateral "
            "(select sum(S.B) sm from S where S.A < R.A) X on true",
            grouped_db,
            [(1, 7), (1, 7), (2, 10)],
        )


class TestOuterJoins:
    def test_left_join(self):
        db = Database()
        db.create("L", ("a", "b"), [(1, 10), (2, 20)])
        db.create("R", ("b", "c"), [(10, "x")])
        check(
            "select L.a, R.c from L left join R on L.b = R.b",
            db,
            [(1, "x"), (2, NULL)],
        )

    def test_fig12_literal_device_applied(self):
        db = Database()
        db.create("R", ("m", "y", "h"), [(1, 100, 11), (2, 200, 12)])
        db.create("S", ("y", "n"), [(100, "x"), (200, "w")])
        arc, result = check(
            "select R.m, S.n from R left outer join S on (R.h = 11 and R.y = S.y)",
            db,
            [(1, "x"), (2, NULL)],
        )
        consts = [j for j in arc.body.join.walk() if isinstance(j, n.JoinConst)]
        assert [c.value for c in consts] == [11]

    def test_full_join(self):
        db = Database()
        db.create("L", ("a",), [(1,), (2,)])
        db.create("R", ("a",), [(2,), (3,)])
        arc, result = check(
            "select L.a, R.a as b from L full join R on L.a = R.a", db
        )
        assert len(result) == 3


class TestUnionAndBoolean:
    def test_union_distinct(self, rs_db):
        check(
            "select R.A as v from R union select S.C as v from S",
            rs_db,
            [(0,), (1,), (2,), (3,), (5,)],
        )

    def test_union_all_keeps_duplicates(self):
        db = Database()
        db.create("R", ("A",), [(1,)])
        db.create("S", ("A",), [(1,)])
        arc, result = check("select R.A from R union all select S.A from S", db)
        assert len(result) == 2

    def test_boolean_select_exists(self, count_bug_db):
        from repro.data import Truth

        arc = to_arc(
            "select exists (select 1 from R where R.q = 0)", database=count_bug_db
        )
        assert isinstance(arc, n.Sentence)
        assert evaluate(arc, count_bug_db) is Truth.TRUE

    def test_select_into_produces_program(self, rs_db):
        arc = to_arc("select R.A into V from R", database=rs_db)
        assert isinstance(arc, n.Program)
        assert "V" in arc.definitions
        result = evaluate(arc, rs_db, SQL_CONVENTIONS)
        assert result.name == "V"


class TestReifiedOperators:
    def test_fig15b(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 10), (2, 3)])
        db.create("S", ("B",), [(4,)])
        db.create("T", ("B",), [(5,)])
        check(
            'select R.A from R, S, T, ">", "-" where R.B = "-".left '
            'and S.B = "-".right and ">".left = "-".out and ">".right = T.B',
            db,
            [(1,)],
        )
