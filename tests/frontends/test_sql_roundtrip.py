"""SQL ↔ ARC round-trip properties (the Section 5 coverage plan).

The paper's theory agenda: for a well-defined SQL fragment, every query
has a pattern-preserving ARC representation and round-tripping is
semantics-preserving.  These tests check the executable half on the
implemented fragment: for a corpus of SQL texts and for randomized
conjunctive queries, ``SQL -> ARC -> SQL -> ARC`` preserves results under
SQL conventions, and ``ARC -> SQL -> ARC`` preserves the canonical
pattern.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import pattern_equal
from repro.backends.sql_render import to_sql
from repro.core.conventions import SQL_CONVENTIONS
from repro.data import Database, generators
from repro.engine import evaluate
from repro.frontends.sql import to_arc
from repro.workloads import paper_examples


@pytest.fixture
def db():
    database = Database()
    database.add(generators.binary_relation("R", 25, domain=8, seed=61))
    database.add(
        generators.binary_relation("S", 25, domain=8, seed=62, attrs=("B", "C"))
    )
    database.create("R2", ("id", "q"), [(9, 0), (1, 1), (2, 3)])
    database.create("S2", ("id", "d"), [(1, "x"), (2, "y"), (2, "z")])
    return database


CORPUS = [
    "select R.A from R",
    "select R.A, R.B from R where R.A < R.B",
    "select R.A, S.C from R, S where R.B = S.B",
    "select distinct R.A from R",
    "select R.A, sum(R.B) sm from R group by R.A",
    "select count(*) c from R",
    "select R.A from R where exists (select 1 from S where S.B = R.B)",
    "select R.A from R where not exists (select 1 from S where S.B = R.B)",
    "select R.A from R where R.B in (select S.B from S)",
    "select R.A from R where R.B not in (select S.B from S)",
    "select r2.id from R2 r2 where r2.q = "
    "(select count(s2.d) from S2 s2 where s2.id = r2.id)",
    "select R.A from R left join S on R.B = S.B",
    "select R.A as v from R union select S.C as v from S",
    "select R.A as v from R union all select S.C as v from S",
]


class TestCorpusRoundTrips:
    @pytest.mark.parametrize("sql", CORPUS)
    def test_execution_preserved(self, db, sql):
        arc = to_arc(sql, database=db)
        rendered = to_sql(arc)
        back = to_arc(rendered, database=db)
        first = evaluate(arc, db, SQL_CONVENTIONS)
        second = evaluate(back, db, SQL_CONVENTIONS)
        assert first == second, rendered

    @pytest.mark.parametrize("sql", CORPUS)
    def test_pattern_preserved(self, db, sql):
        arc = to_arc(sql, database=db)
        back = to_arc(to_sql(arc), database=db)
        assert pattern_equal(arc, back, anonymize_relations=True), to_sql(arc)


class TestPaperSqlCorpus:
    @pytest.mark.parametrize(
        "key",
        [
            "fig4a",
            "fig5a",
            "fig5b",
            "fig11a",
            "fig11b",
            "fig13a",
            "fig13b",
            "fig21a",
        ],
    )
    def test_paper_texts_roundtrip(self, key):
        db = Database()
        db.create("R", ("A", "B", "id", "q"), [])
        db.create("S", ("A", "B", "id", "d"), [])
        arc = to_arc(paper_examples.SQL[key], database=db)
        rendered = to_sql(arc)
        back = to_arc(rendered, database=db)
        assert pattern_equal(arc, back, anonymize_relations=True), rendered


# -- randomized conjunctive queries -----------------------------------------

comparison_ops = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])


@st.composite
def conjunctive_sql(draw):
    """A random conjunctive query over R(A,B) and S(B,C)."""
    tables = ["R", "S"]
    predicates = []
    n_predicates = draw(st.integers(min_value=0, max_value=3))
    columns = {"R": ["A", "B"], "S": ["B", "C"]}
    for _ in range(n_predicates):
        table = draw(st.sampled_from(tables))
        column = draw(st.sampled_from(columns[table]))
        if draw(st.booleans()):
            other_table = draw(st.sampled_from(tables))
            other_column = draw(st.sampled_from(columns[other_table]))
            right = f"{other_table}.{other_column}"
        else:
            right = str(draw(st.integers(min_value=0, max_value=8)))
        predicates.append(f"{table}.{column} {draw(comparison_ops)} {right}")
    select = "select R.A, S.C from R, S"
    if predicates:
        select += " where " + " and ".join(predicates)
    return select


@settings(max_examples=40, deadline=None)
@given(conjunctive_sql())
def test_random_conjunctive_roundtrip(sql):
    db = Database()
    db.add(generators.binary_relation("R", 15, domain=6, seed=77))
    db.add(generators.binary_relation("S", 15, domain=6, seed=78, attrs=("B", "C")))
    arc = to_arc(sql, database=db)
    back = to_arc(to_sql(arc), database=db)
    assert evaluate(arc, db, SQL_CONVENTIONS) == evaluate(back, db, SQL_CONVENTIONS)
