"""Rel mini-frontend tests: the FIO-with-per-aggregate-scope pattern."""

import pytest

from repro.core import nodes as n
from repro.data import Database
from repro.engine import evaluate
from repro.errors import ParseError
from repro.frontends import rel

from ..conftest import rows_as_tuples


class TestParsing:
    def test_simple_def(self):
        defs = rel.parse_rel("def Q(a, sm) : sm = sum[(b) : R(a, b)]")
        assert defs[0].name == "Q"
        assert defs[0].params == ["a", "sm"]
        agg = defs[0].literals[0]
        assert agg.func == "sum" and agg.target == "sm"

    def test_average_alias(self):
        defs = rel.parse_rel("def Q(d, av) : av = average[(e, s) : R(e, d)]")
        assert defs[0].literals[0].func == "avg"

    def test_aggregate_comparison(self):
        defs = rel.parse_rel("def Q(d) : sum[(e, s) : R(e, d)] > 100")
        agg = defs[0].literals[0]
        assert agg.target is None and agg.op == ">"

    def test_multi_atom_body(self):
        defs = rel.parse_rel(
            "def Q(d, av) : av = avg[(e, s) : R(e, d) and S(e, s)]"
        )
        assert len(defs[0].literals[0].body) == 2

    def test_bad_syntax(self):
        with pytest.raises(ParseError):
            rel.parse_rel("def Q(a) a = sum[(b) : R(a, b)]")


class TestTranslation:
    def test_simple_grouped_aggregate(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (1, 20), (2, 5)])
        arc = rel.to_arc("def Q(a, sm) : sm = sum[(b) : R(a, b)]", database=db)
        assert rows_as_tuples(evaluate(arc, db)) == [(1, 30), (2, 5)]

    def test_eq11_multiple_aggregates(self, payroll_db):
        arc = rel.to_arc(
            "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)] and "
            "sum[(e, s) : R(e, d) and S(e, s)] > 100",
            database=payroll_db,
        )
        assert rows_as_tuples(evaluate(arc, payroll_db)) == [("cs", 55.0)]

    def test_one_scope_per_aggregate(self, payroll_db):
        """The Rel legacy the paper highlights: each aggregate gets its own
        collection (eq. (12)), unlike SQL's shared scope (eq. (8))."""
        arc = rel.to_arc(
            "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)] and "
            "sum[(e, s) : R(e, d) and S(e, s)] > 100",
            database=payroll_db,
        )
        nested = [
            b for b in arc.body.bindings if isinstance(b.source, n.Collection)
        ]
        assert len(nested) == 2  # one per aggregate

    def test_aggregates_return_grouping_keys(self, payroll_db):
        """Rel is FIO: each aggregate collection exports its keys."""
        arc = rel.to_arc(
            "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)]",
            database=payroll_db,
        )
        nested = next(
            b.source for b in arc.body.bindings if isinstance(b.source, n.Collection)
        )
        assert "d" in nested.head.attrs

    def test_matches_sql_result(self, payroll_db):
        from repro.frontends.sql import to_arc as sql_to_arc

        rel_arc = rel.to_arc(
            "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)] and "
            "sum[(e, s) : R(e, d) and S(e, s)] > 100",
            database=payroll_db,
        )
        sql_arc = sql_to_arc(
            "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
            "group by R.dept having sum(S.sal) > 100",
            database=payroll_db,
        )
        rel_result = evaluate(rel_arc, payroll_db)
        sql_result = evaluate(sql_arc, payroll_db)
        assert sorted(tuple(sorted(t.as_dict().values(), key=str)) for t in rel_result) == \
            sorted(tuple(sorted(t.as_dict().values(), key=str)) for t in sql_result)

    def test_different_pattern_than_sql(self, payroll_db):
        """Same results, different relational pattern — the paper's point."""
        from repro.analysis import same_pattern
        from repro.frontends.sql import to_arc as sql_to_arc

        rel_arc = rel.to_arc(
            "def Q(d, av) : av = average[(e, s) : R(e, d) and S(e, s)] and "
            "sum[(e, s) : R(e, d) and S(e, s)] > 100",
            database=payroll_db,
        )
        sql_arc = sql_to_arc(
            "select R.dept, avg(S.sal) av from R, S where R.empl = S.empl "
            "group by R.dept having sum(S.sal) > 100",
            database=payroll_db,
        )
        assert not same_pattern(rel_arc, sql_arc, anonymize_relations=True)

    def test_unbound_head_var_rejected(self):
        with pytest.raises(ParseError, match="never bound"):
            rel.to_arc("def Q(a, b) : a = sum[(x) : R(a, x)]")
