"""Datalog/Soufflé frontend tests."""

import pytest

from repro.core import nodes as n
from repro.core.conventions import SOUFFLE_CONVENTIONS
from repro.data import Database
from repro.engine import evaluate
from repro.errors import ParseError
from repro.frontends import datalog

from ..conftest import rows_as_tuples


class TestParsing:
    def test_fact(self):
        rules = datalog.parse_rules("Base(1, 'x').")
        assert rules[0].head_predicate == "Base"
        assert not rules[0].body

    def test_rule(self):
        rules = datalog.parse_rules("Q(x) :- R(x, y), S(y).")
        assert len(rules[0].body) == 2

    def test_wildcard_and_constant(self):
        rules = datalog.parse_rules("Q(x) :- R(x, _, 3).")
        atom = rules[0].body[0]
        assert isinstance(atom.args[1], datalog._Wildcard)
        assert atom.args[2].value == 3

    def test_negation_bang_and_not(self):
        for text in ("Q(x) :- R(x), !S(x).", "Q(x) :- R(x), not S(x)."):
            rules = datalog.parse_rules(text)
            assert rules[0].body[1].negated

    def test_comparison(self):
        rules = datalog.parse_rules("Q(x) :- R(x, y), x < y.")
        assert isinstance(rules[0].body[1], datalog.CompareLit)

    def test_body_aggregate(self):
        rules = datalog.parse_rules("Q(a, s) :- R(a, _), s = sum b : {S(a, b)}.")
        agg = rules[0].body[1]
        assert isinstance(agg, datalog.AggLit)
        assert agg.target == "s" and agg.func == "sum"

    def test_head_aggregate(self):
        rules = datalog.parse_rules("Q(a, sum b : {R(a, b)}) :- R(a, _).")
        assert isinstance(rules[0].head_args[1], datalog.AggLit)

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            datalog.parse_rules("Q(x) :- R(x)")


class TestTranslation:
    def test_join_via_shared_variable(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (2, 20)])
        db.create("S", ("b", "c"), [(10, "x")])
        program = datalog.to_arc("Q(x, z) :- R(x, y), S(y, z).", database=db)
        result = evaluate(program, db, SOUFFLE_CONVENTIONS)
        assert rows_as_tuples(result) == [(1, "x")]

    def test_constants_become_selections(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (2, 20)])
        program = datalog.to_arc("Q(x) :- R(x, 10).", database=db)
        assert rows_as_tuples(evaluate(program, db, SOUFFLE_CONVENTIONS)) == [(1,)]

    def test_recursion(self, ancestor_db):
        program = datalog.to_arc(
            "A(x, y) :- P(x, y).\nA(x, y) :- P(x, z), A(z, y).",
            database=ancestor_db,
        )
        result = evaluate(program, ancestor_db, SOUFFLE_CONVENTIONS)
        pairs = {(row["x"], row["y"]) for row in result}
        assert ("a", "d") in pairs and ("a", "e") in pairs

    def test_multiple_rules_become_disjunction(self, ancestor_db):
        program = datalog.to_arc(
            "A(x, y) :- P(x, y).\nA(x, y) :- P(x, z), A(z, y).",
            database=ancestor_db,
        )
        definition = program.definitions["A"]
        assert isinstance(definition.body, n.Or)

    def test_negation(self):
        db = Database()
        db.create("R", ("x",), [(1,), (2,), (3,)])
        db.create("S", ("x",), [(2,)])
        program = datalog.to_arc("T(x) :- R(x), !S(x).", database=db)
        assert rows_as_tuples(evaluate(program, db, SOUFFLE_CONVENTIONS)) == [(1,), (3,)]

    def test_unbound_negated_variable_rejected(self):
        with pytest.raises(ParseError, match="range restriction"):
            datalog.to_arc("Q(x) :- R(x), !S(y).")

    def test_unbound_head_variable_rejected(self):
        with pytest.raises(ParseError, match="not bound"):
            datalog.to_arc("Q(x, y) :- R(x).")

    def test_inconsistent_arity_rejected(self):
        with pytest.raises(ParseError, match="arities"):
            datalog.to_arc("Q(x) :- R(x).\nQ(x, y) :- R(x), R(y).")


class TestAggregates:
    def test_eq15_body_aggregate_foi_pattern(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 2)])
        db.create("S", ("a", "b"), [])
        program = datalog.to_arc(
            "Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.", database=db
        )
        # Soufflé conventions: sum over empty = 0, so (1, 0).
        result = evaluate(program, db, SOUFFLE_CONVENTIONS)
        assert rows_as_tuples(result) == [(1, 0)]
        # The FOI shape: a correlated lateral collection with γ∅.
        definition = program.definitions["Q"]
        laterals = [
            b
            for node in definition.walk()
            if isinstance(node, n.Quantifier)
            for b in node.bindings
            if isinstance(b.source, n.Collection)
        ]
        assert laterals
        inner = laterals[0].source.body
        assert inner.grouping is not None and inner.grouping.keys == ()

    def test_eq6_head_aggregate(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (1, 20), (2, 5)])
        program = datalog.to_arc("Q(a, sum b : {R(a, b)}) :- R(a, _).", database=db)
        result = evaluate(program, db, SOUFFLE_CONVENTIONS)
        assert rows_as_tuples(result) == [(1, 30), (2, 5)]

    def test_count_aggregate(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (1, 20), (2, 5)])
        program = datalog.to_arc(
            "Q(a, c) :- R(a, _), c = count : {R(a, b)}.", database=db
        )
        assert rows_as_tuples(evaluate(program, db, SOUFFLE_CONVENTIONS)) == [
            (1, 2),
            (2, 1),
        ]

    def test_correlation_does_not_escape(self):
        """Soufflé rule: groundings inside an aggregate stay inside."""
        db = Database()
        db.create("R", ("a",), [(1,)])
        db.create("S", ("a", "b"), [(1, 5), (2, 7)])
        program = datalog.to_arc(
            "Q(x, s) :- R(x), s = sum b : {S(x, b)}.", database=db
        )
        # Only S rows with a = x = 1 are summed.
        assert rows_as_tuples(evaluate(program, db, SOUFFLE_CONVENTIONS)) == [(1, 5)]

    def test_min_max_aggregates(self):
        db = Database()
        db.create("R", ("a", "b"), [(1, 10), (1, 20)])
        program = datalog.to_arc(
            "Q(a, m) :- R(a, _), m = max b : {R(a, b)}.", database=db
        )
        assert rows_as_tuples(evaluate(program, db, SOUFFLE_CONVENTIONS)) == [(1, 20)]
