"""Tests for the SQL subset parser (AST shapes, not translation)."""

import pytest

from repro.errors import ParseError
from repro.frontends.sql import ast, parse_sql


class TestSelect:
    def test_basic(self):
        stmt = parse_sql("select R.A from R")
        assert isinstance(stmt, ast.SelectStmt)
        assert len(stmt.items) == 1
        assert isinstance(stmt.from_items[0], ast.TableRef)

    def test_aliases(self):
        stmt = parse_sql("select R.A as x, R.B y from R as r1")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_items[0].alias == "r1"

    def test_distinct(self):
        assert parse_sql("select distinct R.A from R").distinct

    def test_into(self):
        assert parse_sql("select R.A into V from R").into == "V"

    def test_star(self):
        stmt = parse_sql("select * from R")
        assert stmt.items[0].expr.column == "*"

    def test_unqualified_column(self):
        stmt = parse_sql("select A from R")
        assert stmt.items[0].expr.table is None

    def test_group_by_having(self):
        stmt = parse_sql(
            "select R.A, sum(R.B) from R group by R.A having sum(R.B) > 10"
        )
        assert len(stmt.group_by) == 1
        assert isinstance(stmt.having, ast.Comparison)

    def test_trailing_semicolon(self):
        parse_sql("select R.A from R;")

    def test_comments(self):
        parse_sql("select R.A -- comment\nfrom R")


class TestFromClause:
    def test_comma_list(self):
        stmt = parse_sql("select R.A from R, S, T")
        assert len(stmt.from_items) == 3

    def test_inner_join(self):
        stmt = parse_sql("select R.A from R join S on R.B = S.B")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinedTable)
        assert join.kind == "inner"
        assert isinstance(join.condition, ast.Comparison)

    def test_left_outer_join(self):
        stmt = parse_sql("select R.A from R left outer join S on R.B = S.B")
        assert stmt.from_items[0].kind == "left"

    def test_full_join(self):
        stmt = parse_sql("select R.A from R full join S on R.B = S.B")
        assert stmt.from_items[0].kind == "full"

    def test_cross_join(self):
        stmt = parse_sql("select R.A from R cross join S")
        assert stmt.from_items[0].kind == "cross"

    def test_join_lateral(self):
        stmt = parse_sql(
            "select R.A from R join lateral (select S.B from S) X on true"
        )
        join = stmt.from_items[0]
        assert join.right.lateral
        assert join.condition is None  # ON true normalizes away

    def test_derived_table(self):
        stmt = parse_sql("select X.A from (select R.A from R) as X")
        assert isinstance(stmt.from_items[0], ast.DerivedTable)

    def test_derived_requires_alias(self):
        with pytest.raises(ParseError):
            parse_sql("select 1 from (select R.A from R)")

    def test_chained_joins(self):
        stmt = parse_sql(
            "select R.A from R join S on R.B = S.B left join T on S.C = T.C"
        )
        outer = stmt.from_items[0]
        assert outer.kind == "left"
        assert outer.left.kind == "inner"

    def test_quoted_identifiers(self):
        stmt = parse_sql('select R.A from R, "-" where R.B = "-".left')
        assert stmt.from_items[1].name == "-"


class TestConditions:
    def test_and_or_not(self):
        stmt = parse_sql("select R.A from R where not (R.A = 1 or R.B = 2) and R.C = 3")
        assert isinstance(stmt.where, ast.AndCond)

    def test_exists(self):
        stmt = parse_sql("select R.A from R where exists (select 1 from S)")
        assert isinstance(stmt.where, ast.ExistsPred)

    def test_not_exists(self):
        stmt = parse_sql("select R.A from R where not exists (select 1 from S)")
        assert stmt.where.negated

    def test_in_and_not_in(self):
        stmt = parse_sql("select R.A from R where R.A in (select S.A from S)")
        assert isinstance(stmt.where, ast.InPredicate)
        stmt2 = parse_sql("select R.A from R where R.A not in (select S.A from S)")
        assert stmt2.where.negated

    def test_is_null(self):
        stmt = parse_sql("select R.A from R where R.A is null")
        assert isinstance(stmt.where, ast.IsNullPred)
        stmt2 = parse_sql("select R.A from R where R.A is not null")
        assert stmt2.where.negated

    def test_scalar_subquery_comparison(self):
        stmt = parse_sql(
            "select R.A from R where R.q = (select count(S.d) from S)"
        )
        assert isinstance(stmt.where.right, ast.ScalarSubquery)


class TestExpressions:
    def test_arithmetic_precedence(self):
        stmt = parse_sql("select R.A + R.B * 2 from R")
        expr = stmt.items[0].expr
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_aggregates(self):
        stmt = parse_sql("select count(*), sum(R.B), count(distinct R.A) from R")
        assert stmt.items[0].expr.arg is None
        assert stmt.items[2].expr.distinct

    def test_literals(self):
        stmt = parse_sql("select 1, 2.5, 'x', null, true from R")
        values = [item.expr.value for item in stmt.items]
        assert values[0] == 1 and values[1] == 2.5 and values[2] == "x"

    def test_negative_number(self):
        stmt = parse_sql("select -5 from R")
        assert stmt.items[0].expr.value == -5

    def test_scalar_subquery_item(self):
        stmt = parse_sql("select R.A, (select sum(S.B) from S) sm from R")
        assert isinstance(stmt.items[1].expr, ast.ScalarSubquery)


class TestUnion:
    def test_union(self):
        stmt = parse_sql("select R.A from R union select S.A from S")
        assert isinstance(stmt, ast.UnionStmt)
        assert not stmt.all

    def test_union_all(self):
        stmt = parse_sql("select R.A from R union all select S.A from S")
        assert stmt.all

    def test_mixed_union_rejected(self):
        with pytest.raises(ParseError):
            parse_sql(
                "select R.A from R union select S.A from S union all select T.A from T"
            )


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "select",
            "select R.A from",
            "select R.A from R where",
            "select R.A from R where R.A",
            "select R.A from R group by",
            "select R.A from R extra garbage",
        ],
    )
    def test_parse_errors(self, sql):
        with pytest.raises(ParseError):
            parse_sql(sql)
