"""TRC frontend: the Section 2.1 normalization steps."""

import pytest

from repro.analysis import same_pattern
from repro.core import nodes as n
from repro.core.parser import parse
from repro.core.validator import validate
from repro.engine import evaluate
from repro.errors import ParseError
from repro.frontends import trc

from ..conftest import rows_as_tuples


class TestNormalization:
    def test_textbook_example(self, rs_db):
        """The paper's running normalization: textbook TRC -> strict ARC."""
        loose = "{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}"
        arc = trc.to_arc(loose)
        assert validate(arc, database=rs_db).ok
        assert rows_as_tuples(evaluate(arc, rs_db)) == [(1,), (3,)]

    def test_intermediate_form_equivalent(self, rs_db):
        step1 = trc.to_arc("{r.A | r ∈ R ∧ ∃s ∈ S[r.B = s.B ∧ s.C = 0]}")
        step0 = trc.to_arc("{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}")
        assert same_pattern(step0, step1)

    def test_head_assignments_added(self):
        arc = trc.to_arc("{r.A | r ∈ R}")
        assignment = n.conjuncts(arc.body.body)[0]
        assert isinstance(assignment.left, n.Attr)
        assert assignment.left.var == "Q"

    def test_strict_form_matches_eq1(self, rs_db):
        arc = trc.to_arc("{r.A | r ∈ R ∧ ∃s ∈ S[r.B = s.B ∧ s.C = 0]}")
        eq1 = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
        assert evaluate(arc, rs_db).set_equal(evaluate(eq1, rs_db))

    def test_multiple_head_attrs(self, rs_db):
        arc = trc.to_arc("{r.A, s.C | r ∈ R ∧ s ∈ S ∧ r.B = s.B}")
        assert arc.head.attrs == ("A", "C")
        assert rows_as_tuples(evaluate(arc, rs_db)) == [(1, 0), (2, 5), (3, 0)]

    def test_duplicate_head_names_disambiguated(self):
        arc = trc.to_arc("{r.A, s.A | r ∈ R ∧ s ∈ S ∧ r.A = s.A}")
        assert len(set(arc.head.attrs)) == 2

    def test_computed_head_expr(self, rs_db):
        arc = trc.to_arc("{r.A + 1 | r ∈ R}")
        assert arc.head.attrs == ("col1",)
        assert rows_as_tuples(evaluate(arc, rs_db)) == [(2,), (3,), (4,)]

    def test_negation(self, rs_db):
        arc = trc.to_arc("{r.A | r ∈ R ∧ ¬∃s ∈ S[r.B = s.B ∧ s.C = 0]}")
        assert rows_as_tuples(evaluate(arc, rs_db)) == [(2,)]

    def test_ascii_spelling(self, rs_db):
        arc = trc.to_arc(
            "{r.A | r in R and exists s[r.B = s.B and s.C = 0 and s in S]}"
        )
        assert rows_as_tuples(evaluate(arc, rs_db)) == [(1,), (3,)]

    def test_custom_head_name(self):
        arc = trc.to_arc("{r.A | r ∈ R}", head_name="Out")
        assert arc.head.name == "Out"


class TestSafety:
    def test_unbound_quantifier_rejected(self):
        with pytest.raises(ParseError, match="unsafe|membership"):
            trc.to_arc("{r.A | r ∈ R ∧ ∃s[r.B = s.B]}")

    def test_membership_under_disjunction_rejected(self):
        with pytest.raises(ParseError):
            trc.to_arc("{r.A | r ∈ R ∧ ∃s[(s ∈ S ∨ r.B = 1) ∧ r.B = s.B]}")
