"""EvalOptions validation and the legacy-kwarg deprecation shims."""

import warnings

import pytest

from repro.api import EvalOptions, reset_legacy_warnings
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.errors import ArcError, OptionsError


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    return database


QUERY = "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}"


class TestValidation:
    def test_defaults(self):
        options = EvalOptions()
        assert options.planner and options.decorrelate
        assert options.backend is None and options.db_file is None
        assert options.fallback

    def test_planner_false_with_backend_raises(self):
        with pytest.raises(OptionsError, match="both select an engine"):
            EvalOptions(planner=False, backend="sqlite")

    def test_db_file_implies_sqlite(self, tmp_path):
        options = EvalOptions(db_file=str(tmp_path / "cat.db"))
        assert options.backend == "sqlite"

    def test_db_file_with_other_backend_raises(self, tmp_path):
        with pytest.raises(OptionsError, match="silently ignore"):
            EvalOptions(backend="reference", db_file=str(tmp_path / "cat.db"))

    def test_options_error_is_an_arc_error(self):
        with pytest.raises(ArcError):
            EvalOptions(planner=False, backend="planner")

    def test_with_backend_revalidates(self):
        options = EvalOptions(planner=False)
        with pytest.raises(OptionsError):
            options.with_backend("sqlite")

    def test_with_backend_drops_db_file_for_other_engines(self, tmp_path):
        options = EvalOptions(db_file=str(tmp_path / "cat.db"))
        assert options.with_backend("reference").db_file is None
        assert options.with_backend("sqlite") is options

    def test_with_backend_none_is_identity(self):
        options = EvalOptions(backend="sqlite")
        assert options.with_backend(None) is options


class TestOldPathFix:
    """The old kwarg pile silently ignored ``planner=False`` when a backend
    was also selected; the Session rebase turns the contradiction into an
    OptionsError at the old entry point too."""

    def test_evaluate_with_contradictory_kwargs_raises(self, db):
        with pytest.raises(OptionsError, match="both select an engine"):
            evaluate(
                parse(QUERY), db, SQL_CONVENTIONS, planner=False, backend="sqlite"
            )

    def test_evaluate_rejects_options_plus_legacy_kwargs(self, db):
        with pytest.raises(OptionsError, match="not both"):
            evaluate(
                parse(QUERY), db, SQL_CONVENTIONS,
                planner=False, options=EvalOptions(),
            )

    def test_evaluate_with_options_object(self, db):
        result = evaluate(
            parse(QUERY), db, SQL_CONVENTIONS,
            options=EvalOptions(backend="sqlite"),
        )
        assert sorted(row["A"] for row in result) == [2, 3]


class TestDeprecationShims:
    def test_each_kwarg_warns_exactly_once_per_process(self, db):
        node = parse(QUERY)
        reset_legacy_warnings()
        try:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                evaluate(node, db, planner=False)
                evaluate(node, db, planner=False)  # second call: silent
                evaluate(node, db, planner=True)  # same kwarg name: silent
                evaluate(node, db, decorrelate=False)  # new kwarg: warns
            deprecations = [
                str(w.message) for w in caught
                if issubclass(w.category, DeprecationWarning)
            ]
            assert len(deprecations) == 2, deprecations
            assert any("planner" in message for message in deprecations)
            assert any("decorrelate" in message for message in deprecations)
        finally:
            reset_legacy_warnings()

    def test_legacy_kwargs_still_work(self, db):
        node = parse(QUERY)
        via_kwarg = evaluate(node, db, SQL_CONVENTIONS, backend="sqlite")
        via_options = evaluate(
            node, db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        assert via_kwarg == via_options

    def test_plain_evaluate_does_not_warn(self, db):
        node = parse(QUERY)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            evaluate(node, db)
