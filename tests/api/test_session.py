"""Session/Prepared warm-state reuse, counter-pinned.

The tentpole claim of the Session API: a second ``Prepared.run()`` rides
entirely on warm state — zero plan compilations, zero decorrelation-index
builds, zero SQLite catalog reloads — and mutating a relation invalidates
exactly the caches that depend on it.
"""

import warnings

import pytest

from repro.api import EvalOptions, Prepared, Session
from repro.backends.exec import BackendFallbackWarning
from repro.backends.exec import sqlite_exec
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.errors import OptionsError
from repro.workloads import sweeps

JOIN = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"
GROUPED = "{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}"


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"), [(i, i % 7) for i in range(40)])
    database.create("S", ("B", "C"), [(i % 7, i) for i in range(21)])
    return database


def _correlated_db(n=120):
    domain = max(4, n // 4)
    database = Database()
    database.create("R", ("K0", "misc"), [(i % domain, i) for i in range(n)])
    database.create(
        "S", ("K0", "G", "B"), [(i % domain, i % 3, i % 50) for i in range(n)]
    )
    return database


class TestPrepare:
    def test_prepare_text_is_cached(self, db):
        session = Session(db)
        first = session.prepare(JOIN)
        assert session.prepare(JOIN) is first
        assert session.prepare(JOIN, "arc") is first

    def test_prepare_node_adopts(self, db):
        session = Session(db)
        node = parse(JOIN)
        prepared = session.prepare(node)
        assert isinstance(prepared, Prepared)
        assert prepared.node is node

    def test_prepare_other_frontends(self, db):
        session = Session(db, SQL_CONVENTIONS)
        prepared = session.prepare("select R.A from R where R.B = 1", "sql")
        result = prepared.run()
        assert set(result.schema) == {"A"}

    def test_session_requires_eval_options(self, db):
        with pytest.raises(OptionsError, match="EvalOptions"):
            Session(db, options={"backend": "sqlite"})

    def test_results_match_one_shot_evaluate(self, db):
        session = Session(db, SQL_CONVENTIONS)
        for query in (JOIN, GROUPED):
            prepared = session.prepare(query)
            expected = evaluate(
                parse(query), db, SQL_CONVENTIONS, options=EvalOptions()
            )
            assert prepared.run() == expected
            assert prepared.run(backend="reference") == expected
            assert prepared.run(backend="sqlite") == expected


class TestWarmStateReuse:
    def test_second_run_compiles_no_plans(self, db):
        session = Session(db, SQL_CONVENTIONS)
        prepared = session.prepare(JOIN)
        first = prepared.run()
        compiled_after_first = session.stats.plans_compiled
        assert compiled_after_first > 0
        second = prepared.run()
        assert second == first
        assert session.stats.plans_compiled == compiled_after_first
        assert session.stats.plan_cache_hits > 0

    def test_second_run_builds_no_decorr_index(self):
        session = Session(_correlated_db(), SQL_CONVENTIONS)
        prepared = session.prepare(sweeps.correlated_aggregate_query(agg="sum"))
        first = prepared.run()
        assert not first.is_empty()
        assert session.stats.decorr_index_builds == 1
        assert session.stats.lateral_reevals == 0
        assert prepared.run() == first
        assert session.stats.decorr_index_builds == 1  # reused, not rebuilt

    def test_second_run_reloads_no_catalog(self, db):
        sqlite_exec.clear_catalog_cache()
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        prepared = session.prepare(JOIN)
        first = prepared.run()
        assert session.catalog_loads == 1
        loads_after_first = sqlite_exec.stats["loads"]
        assert prepared.run() == first
        assert sqlite_exec.stats["loads"] == loads_after_first
        assert session.catalog_hits == 1

    def test_second_run_skips_the_capability_probe(self, db):
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        prepared = session.prepare(JOIN)
        prepared.run()
        assert session.probe_hits == 0
        prepared.run()
        assert session.probe_hits == 1

    def test_mutation_invalidates_exactly_the_affected_caches(self):
        database = _correlated_db()
        session = Session(database, SQL_CONVENTIONS)
        prepared = session.prepare(sweeps.correlated_aggregate_query(agg="sum"))
        prepared.run()
        prepared.run()
        assert session.stats.decorr_index_builds == 1
        compiled_before = session.stats.plans_compiled

        # Mutating an inner relation drops the FIO index (it is cached on
        # that relation) but leaves the compiled scope plans intact: the
        # catalog classification of every binding is unchanged.
        database["S"].add((0, 0, 49))
        rerun = prepared.run()
        assert session.stats.decorr_index_builds == 2
        assert session.stats.plans_compiled == compiled_before
        assert rerun == evaluate(
            prepared.node, database, SQL_CONVENTIONS,
            options=EvalOptions(decorrelate=False),
        )

    def test_mutation_reloads_the_sqlite_catalog(self, db):
        sqlite_exec.clear_catalog_cache()
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        prepared = session.prepare(JOIN)
        prepared.run()
        prepared.run()
        assert session.catalog_loads == 1
        probe_hits_before = session.probe_hits
        db["R"].add((100, 1))
        result = prepared.run()
        assert session.catalog_loads == 2  # fingerprint changed: one reload
        assert session.probe_hits == probe_hits_before  # verdict re-probed
        assert any(row["A"] == 100 for row in result)

    def test_stats_accumulate_across_runs_and_queries(self, db):
        session = Session(db, SQL_CONVENTIONS)
        session.prepare(JOIN).run()
        probes_after_join = session.stats.index_probes
        assert probes_after_join > 0
        session.prepare(GROUPED).run()
        assert session.stats.index_probes >= probes_after_join


class TestBackendDispatch:
    def test_fallback_warning_passes_through(self, db):
        # Set conventions are not offloadable: the sqlite run falls back.
        session = Session(
            db, SET_CONVENTIONS, options=EvalOptions(backend="sqlite")
        )
        prepared = session.prepare(JOIN)
        with pytest.warns(BackendFallbackWarning, match="set semantics"):
            result = prepared.run()
        assert result == evaluate(parse(JOIN), db, options=EvalOptions())

    def test_fallback_false_raises(self, db):
        from repro.backends.exec import BackendUnsupported

        session = Session(
            db, SET_CONVENTIONS,
            options=EvalOptions(backend="sqlite", fallback=False),
        )
        with pytest.raises(BackendUnsupported, match="set semantics"):
            session.prepare(JOIN).run()

    def test_per_run_override_leaves_session_options_alone(self, db):
        session = Session(db, SQL_CONVENTIONS)
        prepared = session.prepare(JOIN)
        baseline = prepared.run()
        assert prepared.run(backend="sqlite") == baseline
        assert session.options.backend is None

    def test_contradictory_override_raises(self, db):
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(planner=False)
        )
        prepared = session.prepare(JOIN)
        with pytest.raises(OptionsError, match="both select an engine"):
            prepared.run(backend="sqlite")

    def test_db_file_round_trip(self, db, tmp_path):
        path = str(tmp_path / "catalog.db")
        session = Session(
            db, SQL_CONVENTIONS, options=EvalOptions(db_file=path)
        )
        result = session.prepare(JOIN).run()
        assert (tmp_path / "catalog.db").exists()
        # A second session against the persisted file starts warm.
        second = Session(db, SQL_CONVENTIONS, options=EvalOptions(db_file=path))
        assert second.prepare(JOIN).run() == result
        assert second.catalog_loads == 0

    def test_prepared_lru_evicts(self, db):
        from repro.api import session as session_module

        session = Session(db)
        first = session.prepare(JOIN)
        for i in range(session_module._PREPARED_LIMIT):
            session.prepare("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = %d]}" % i)
        assert session.prepare(JOIN) is not first

    def test_context_manager_closes(self, db):
        with Session(db) as session:
            session.prepare(JOIN)
            assert len(session._prepared) == 1
        assert len(session._prepared) == 0
