"""The ``repro serve`` HTTP endpoint: warm sessions over the wire."""

import json
import threading
import urllib.error
import urllib.request

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.api.serve import make_server
from repro.core.conventions import SQL_CONVENTIONS

QUERY = "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}"


@pytest.fixture
def server():
    db = repro.Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    session = Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite"))
    srv = make_server(session)  # port 0: ephemeral
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as resp:
        return resp.status, json.load(resp)


def _post(server, body):
    request = urllib.request.Request(
        server.url + "/query",
        json.dumps(body).encode("utf-8"),
        {"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as resp:
        return resp.status, resp.read(), dict(resp.headers)


class TestHealthz:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["relations"] == ["R"]
        assert body["backend"] == "sqlite"

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404


class TestQuery:
    def test_repeated_posts_return_identical_bodies_and_record_warmth(
        self, server
    ):
        status1, body1, headers1 = _post(server, {"query": QUERY})
        status2, body2, headers2 = _post(server, {"query": QUERY})
        assert status1 == status2 == 200
        assert body1 == body2  # timing rides headers, not the body
        payload = json.loads(body1)
        assert payload["kind"] == "relation"
        assert payload["columns"] == ["A"]
        assert payload["rows"] == [[2], [3]]
        assert payload["fallback"] == []
        # Warm-path accounting: the second request hits the prepared LRU
        # and its timing is recorded in the response headers.
        assert headers1["X-Arc-Warm"] == "0"
        assert headers2["X-Arc-Warm"] == "1"
        assert int(headers1["X-Arc-Elapsed-Us"]) > 0
        assert int(headers2["X-Arc-Elapsed-Us"]) > 0

    def test_truth_result(self, server):
        status, body, _ = _post(server, {"query": "∃r ∈ R[r.B > 15]"})
        assert status == 200
        assert json.loads(body) == {"fallback": [], "kind": "truth", "truth": "TRUE"}

    def test_sql_frontend_and_backend_override(self, server):
        status, body, _ = _post(
            server,
            {
                "query": "select R.A from R where R.B > 15",
                "frontend": "sql",
                "backend": "reference",
            },
        )
        assert status == 200
        assert json.loads(body)["rows"] == [[2], [3]]

    def test_null_maps_to_json_null(self, server):
        server.session.database["R"].add((4, repro.NULL))
        status, body, _ = _post(server, {"query": "{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}"})
        assert status == 200
        assert [4, None] in json.loads(body)["rows"]

    def test_fallback_reasons_surface_in_the_body(self, server):
        # NULL literal under a top-level quantifier: sqlite refuses, the
        # planner answers, and the body says why.
        status, body, _ = _post(server, {"query": "∃r ∈ R[r.B > null]"})
        assert status == 200
        payload = json.loads(body)
        assert payload["kind"] == "truth"
        assert payload["fallback"], payload

    def test_requests_counted_in_stats(self, server):
        _post(server, {"query": QUERY})
        status, stats = _get(server, "/stats")
        assert status == 200
        assert stats["requests"] >= 1
        assert "plans_compiled" in stats
        # The decorrelation counters (E27) ride the same stats payload.
        for counter in (
            "band_index_builds",
            "domain_join_compensations",
            "tribucket_probes",
        ):
            assert counter in stats

    def test_theta_lateral_counters_visible_in_stats(self, server):
        theta = (
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ R, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        # Route to the planner: on sqlite the shape runs as a correlated
        # scalar subquery and never touches the band index.
        status, body, _ = _post(server, {"query": theta, "backend": "planner"})
        assert status == 200, body
        _, stats = _get(server, "/stats")
        assert stats["band_index_builds"] == 1
        assert stats["lateral_reevals"] == 0


class TestErrors:
    def _post_error(self, server, body, *, raw=None):
        data = raw if raw is not None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/query", data, {"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        return excinfo.value.code, json.load(excinfo.value)

    def test_malformed_json_is_400(self, server):
        code, body = self._post_error(server, None, raw=b"{not json")
        assert code == 400
        assert "JSON" in body["error"]

    def test_missing_query_is_400(self, server):
        code, body = self._post_error(server, {"frontend": "arc"})
        assert code == 400

    def test_unknown_frontend_is_400(self, server):
        code, body = self._post_error(server, {"query": QUERY, "frontend": "cobol"})
        assert code == 400
        assert "frontend" in body["error"]

    def test_parse_error_is_400(self, server):
        code, body = self._post_error(server, {"query": "{broken"})
        assert code == 400
        assert "error" in body

    def test_unknown_backend_is_400(self, server):
        code, body = self._post_error(
            server, {"query": QUERY, "backend": "duckdb"}
        )
        assert code == 400
        assert "unknown backend" in body["error"]

    def test_post_to_unknown_path_is_404(self, server):
        request = urllib.request.Request(
            server.url + "/other", b"{}", {"Content-Type": "application/json"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_error_responses_drain_the_body_on_keepalive(self, server):
        """An errored POST must still consume its request body; otherwise
        the next request on the same HTTP/1.1 connection reads garbage."""
        import http.client

        host, port = server.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            body = json.dumps({"query": QUERY}).encode("utf-8")
            conn.request("POST", "/other", body)  # 404 with an unread body
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            # Same connection: must parse cleanly and answer the query.
            conn.request("POST", "/query", body)
            response = conn.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["rows"] == [[2], [3]]
        finally:
            conn.close()

    def test_failed_first_run_does_not_mark_the_query_warm(self, server):
        # fallback=False + set-semantics would be one route; simpler: an
        # unknown backend errors before any run, so a later good request
        # for the same query is still cold.
        bad = {"query": "∃r ∈ R[r.A = 1]", "backend": "duckdb"}
        with pytest.raises(urllib.error.HTTPError):
            _post(server, bad)
        _, _, headers = _post(server, {"query": "∃r ∈ R[r.A = 1]"})
        assert headers["X-Arc-Warm"] == "0"
