"""Serve-path hardening: timeouts, budgets, breakers, body caps, shutdown.

Every test here exercises the property that made this machinery worth
building: a degraded or abusive request gets an *answer* — typed JSON with
the right status code — and the server keeps serving afterwards.
"""

import http.client
import json
import signal
import threading
import time

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.api.serve import install_sigterm_handler, make_server
from repro.backends.exec import breaker_for, reset_breakers, sqlite_exec
from repro.backends.exec import registry as registry_mod
from repro.backends.exec.registry import CircuitBreaker
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.util import failpoints

#: Diverging recursion — only a deadline stops it.
RUNAWAY = "{T(x) | ∃p ∈ P[T.x = p.x] ∨ ∃t ∈ T[T.x = t.x + 1]}"
SIMPLE = "{Q(x) | ∃p ∈ P[Q.x = p.x]}"


@pytest.fixture(autouse=True)
def clean_state():
    failpoints.reset()
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    failpoints.reset()
    reset_breakers()
    failpoints.load_env()


def _session(conventions=SET_CONVENTIONS, **options):
    db = repro.Database()
    db.create("P", ("x",), [(1,)])
    return Session(db, conventions, options=EvalOptions(**options))


@pytest.fixture
def served():
    session = _session()
    server = make_server(session, max_body_bytes=4096)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


@pytest.fixture
def served_sql():
    # Bag (SQL) conventions: the static sqlite probe passes, so requests
    # actually reach the engine — required to exercise runtime faults.
    session = _session(SQL_CONVENTIONS)
    server = make_server(session)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _request(server, method, path, body=None, headers=None):
    host, port = server.server_address[:2]
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _post(server, payload):
    return _request(
        server, "POST", "/query", json.dumps(payload),
        {"Content-Type": "application/json"},
    )


class TestRequestTimeout:
    def test_timeout_returns_408_and_connection_stays_usable(self, served):
        host, port = served.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            # Request 1: a runaway with a request-level deadline → 408.
            body = json.dumps({"query": RUNAWAY, "timeout_ms": 200})
            conn.request(
                "POST", "/query", body,
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 408
            assert answer["error_type"] == "QueryTimeout"
            # Request 2 on the SAME keep-alive connection: the timeout
            # killed the query, not the socket.
            conn.request(
                "POST", "/query", json.dumps({"query": SIMPLE}),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            answer = json.loads(response.read())
            assert response.status == 200
            assert answer["rows"] == [[1]]
        finally:
            conn.close()

    def test_timeout_is_visible_in_stats(self, served):
        status, _ = _post(served, {"query": RUNAWAY, "timeout_ms": 150})
        assert status == 408
        status, stats = _request(served, "GET", "/stats")
        assert status == 200
        assert stats["timeouts"] == 1

    def test_budget_exceeded_returns_413(self, served):
        status, answer = _post(served, {"query": RUNAWAY, "max_rows": 10})
        assert status == 413
        assert answer["error_type"] == "BudgetExceeded"

    @pytest.mark.parametrize(
        "override", [{"timeout_ms": -1}, {"timeout_ms": "soon"},
                     {"max_rows": 0}, {"max_rows": 2.5}]
    )
    def test_malformed_budget_overrides_are_400(self, served, override):
        status, answer = _post(served, {"query": SIMPLE, **override})
        assert status == 400
        assert answer["error_type"] == "OptionsError"


class TestBodyCap:
    def test_oversized_body_is_refused_with_413(self, served):
        status, answer = _post(served, {"query": "x" * 8192})
        assert status == 413
        assert "byte limit" in answer["error"]

    def test_server_survives_an_oversized_request(self, served):
        _post(served, {"query": "x" * 8192})
        status, answer = _post(served, {"query": SIMPLE})
        assert status == 200
        assert answer["rows"] == [[1]]

    def test_negative_content_length_is_400(self, served):
        host, port = served.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("POST", "/query", headers={"Content-Length": "-5"})
            response = conn.getresponse()
            assert response.status == 400
            assert "negative" in json.loads(response.read())["error"]
        finally:
            conn.close()


class TestDegradedHealth:
    def test_open_breaker_degrades_healthz_to_503(self, served):
        breaker = breaker_for("sqlite")
        for _ in range(breaker.threshold):
            breaker.record_failure()
        host, port = served.server_address[:2]
        conn = http.client.HTTPConnection(host, port, timeout=30)
        try:
            conn.request("GET", "/healthz")
            response = conn.getresponse()
            body = json.loads(response.read())
            assert response.status == 503
            # Degraded is retriable: the 503 advises when to poll again.
            assert response.headers["Retry-After"] == "1"
        finally:
            conn.close()
        assert body["status"] == "degraded"
        assert body["degraded_backends"] == ["sqlite"]
        assert body["breakers"]["sqlite"]["state"] == "open"

    def test_healthz_recovers_when_the_breaker_closes(self, served):
        breaker = breaker_for("sqlite")
        for _ in range(breaker.threshold):
            breaker.record_failure()
        breaker.record_success()
        status, body = _request(served, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"

    def test_stats_exposes_breaker_counters(self, served_sql):
        clock = [0.0]
        registry_mod._BREAKERS["sqlite"] = CircuitBreaker(
            "sqlite", threshold=1, cooldown_s=30.0, clock=lambda: clock[0]
        )
        failpoints.activate("sqlite.execute", "error")
        status, answer = _post(
            served_sql, {"query": SIMPLE, "backend": "sqlite"}
        )
        # The injected fault took the fallback: the answer is still right.
        assert status == 200
        assert answer["rows"] == [[1]]
        assert answer["fallback"]
        status, stats = _request(served_sql, "GET", "/stats")
        assert stats["breaker_trips"] == 1
        assert stats["breakers"]["sqlite"]["trips"] == 1


class TestFallbackReasons:
    def test_failpoint_forced_fallback_reports_reasons_in_the_body(
        self, served_sql
    ):
        failpoints.activate("sql.render", "unsupported:injected render fault")
        status, answer = _post(
            served_sql, {"query": SIMPLE, "backend": "sqlite"}
        )
        assert status == 200
        assert answer["rows"] == [[1]]
        assert any("injected render fault" in r for r in answer["fallback"])


class TestDrainSurfaces:
    """Observability must outlive admission: while a drain waits on
    in-flight work, an already-open connection can still read ``/stats``,
    ``/healthz`` and ``/metrics``, and a late ``POST /query`` is refused
    with a typed 503 that advises when (not) to retry."""

    @staticmethod
    def _on(conn, method, path, body=None, headers=None):
        conn.request(method, path, body=body, headers=headers or {})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()

    def test_observability_endpoints_answer_during_an_inflight_drain(
        self, served
    ):
        host, port = served.server_address[:2]
        # Open the keep-alive connection BEFORE drain: shutdown() stops
        # the accept loop, but established connections keep their handler.
        conn = http.client.HTTPConnection(host, port, timeout=30)
        release = threading.Event()
        drainer = threading.Thread(target=served.drain)
        try:
            # Prime the connection so the handler thread exists.
            status, _, _ = self._on(conn, "GET", "/healthz")
            assert status == 200
            # Occupy the single worker, then start draining around it.
            blocker = served.pool.submit(lambda worker: release.wait(30))
            deadline = time.monotonic() + 5
            while served.pool.busy < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            drainer.start()
            deadline = time.monotonic() + 5
            while not served.pool.draining and time.monotonic() < deadline:
                time.sleep(0.005)
            assert served.pool.draining

            status, _, body = self._on(conn, "GET", "/stats")
            assert status == 200
            stats = json.loads(body)
            assert stats["pool"]["draining"] is True
            assert stats["pool"]["busy"] == 1

            status, _, body = self._on(conn, "GET", "/healthz")
            assert status in (200, 503)  # degraded is fine, silence is not
            assert json.loads(body)["status"] in ("ok", "degraded")

            status, _, body = self._on(conn, "GET", "/metrics")
            assert status == 200
            assert b"arc_pool_queue_depth" in body

            status, headers, body = self._on(
                conn, "POST", "/query",
                json.dumps({"query": SIMPLE}),
                {"Content-Type": "application/json"},
            )
            answer = json.loads(body)
            assert status == 503
            assert answer["error_type"] == "AdmissionError"
            assert "draining" in answer["error"]
            assert headers["Retry-After"] == "1"
        finally:
            release.set()
            conn.close()
            if drainer.is_alive() or drainer.ident is not None:
                drainer.join(timeout=10)
            assert not drainer.is_alive()
        assert blocker.wait(10) is True


class TestGracefulShutdown:
    def test_sigterm_drains_the_inflight_request(self):
        session = _session()
        server = make_server(session)
        previous = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        handler = install_sigterm_handler(server)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            outcome = {}

            def slow_request():
                outcome["response"] = _post(
                    server, {"query": RUNAWAY, "timeout_ms": 700}
                )

            requester = threading.Thread(target=slow_request)
            requester.start()
            time.sleep(0.2)  # the runaway is now in flight
            handler(signal.SIGTERM, None)  # what the signal would do
            requester.join(timeout=10)
            thread.join(timeout=10)
            assert not thread.is_alive(), "serve_forever should have exited"
            # The in-flight request completed and was answered (408: its
            # own deadline fired) — shutdown never killed it mid-response.
            status, answer = outcome["response"]
            assert status == 408
            assert answer["error_type"] == "QueryTimeout"
        finally:
            server.server_close()
            for signum, old in previous.items():
                signal.signal(signum, old)

    def test_handler_is_idempotent_under_signal_storms(self):
        session = _session()
        server = make_server(session)
        previous = {
            signum: signal.getsignal(signum)
            for signum in (signal.SIGTERM, signal.SIGINT)
        }
        handler = install_sigterm_handler(server)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for _ in range(5):
                handler(signal.SIGTERM, None)
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            server.server_close()
            for signum, old in previous.items():
                signal.signal(signum, old)
