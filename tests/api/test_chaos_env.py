"""Env-agnostic chaos invariant: correct answer or typed error, never both wrong.

CI runs this module under a matrix of ``REPRO_FAILPOINTS`` values (see
``.github/workflows/ci.yml``); in a plain tier-1 run the variable is unset
and the module doubles as the matrix's empty entry.  The assertions are
deliberately agnostic to *which* faults are armed: whatever the
environment injects, a sqlite-backend session must either

* answer **identically to the reference oracle** (clean planner fallback,
  or the sqlite engine surviving via retries), or
* raise a **typed** :class:`~repro.errors.ArcError` —

never a raw ``sqlite3`` exception, never a hang, never a wrong answer.
"""

import os

import pytest

import repro
from repro.api import EvalOptions, Session
from repro.backends.exec import reset_breakers, sqlite_exec
from repro.core.conventions import SQL_CONVENTIONS
from repro.errors import ArcError

#: A workload wide enough to cross every failpoint site: plain selection,
#: aggregation, and recursion (the ``WITH RECURSIVE`` path).
QUERIES = [
    "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 15]}",
    "{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}",
    "{Q(A, B) | ∃r ∈ R, s ∈ R[Q.A = r.A ∧ Q.B = s.B ∧ r.A < s.A]}",
]


@pytest.fixture(autouse=True)
def cold_breakers():
    # Breakers persist process-wide; this module may legitimately trip
    # them (that *is* chaos), but it must not leak open breakers into
    # whatever runs next.
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    reset_breakers()


def _db():
    db = repro.Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30), (4, 40)])
    return db


def _oracle(db, query):
    session = Session(
        db, SQL_CONVENTIONS, options=EvalOptions(backend="reference")
    )
    return session.prepare(query).run().sorted_rows()


@pytest.mark.parametrize("query", QUERIES)
def test_sqlite_answers_match_the_oracle_or_raise_typed(query):
    db = _db()
    expected = _oracle(db, query)
    session = Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="sqlite"))
    prepared = session.prepare(query)
    # Several runs: count-limited specs (kind*N) change behavior across
    # attempts, and repeated faults may trip the breaker mid-sequence —
    # the invariant must hold in every one of those states.
    for _ in range(3):
        try:
            result = prepared.run()
        except ArcError:
            continue  # typed refusal: acceptable, never a wrong answer
        assert result.sorted_rows() == expected


def test_active_failpoints_match_the_environment():
    from repro.util import failpoints

    spec = os.environ.get("REPRO_FAILPOINTS", "")
    failpoints.load_env()
    expected_sites = {
        entry.split("=", 1)[0].strip()
        for entry in spec.split(",")
        if entry.strip()
    }
    assert set(failpoints.active()) == expected_sites
