"""Property-based tests of evaluator invariants over random instances.

Each property is one of the paper's semantic claims, checked on generated
databases:

* set-semantics results equal deduplicated bag-semantics results;
* unnesting preserves set semantics;
* FIO and FOI aggregation agree (Section 2.5);
* SQL translation agrees with hand-written ARC on conjunctive queries;
* γ∅ always yields exactly one row; keyed grouping yields one row per
  distinct key;
* the recursive ancestor program equals the reference transitive closure.
"""

from hypothesis import given, settings, strategies as st

from repro.core.conventions import Conventions, SET_CONVENTIONS, Semantics
from repro.core.parser import parse
from repro.data import Database
from repro.engine import evaluate
from repro.engine.fixpoint import transitive_closure_reference

BAG = Conventions(semantics=Semantics.BAG)

small_int = st.integers(min_value=0, max_value=6)
rows_ab = st.lists(st.tuples(small_int, small_int), max_size=10)


def make_db(rows_r, rows_s):
    db = Database()
    db.create("R", ("A", "B"), rows_r)
    db.create("S", ("B", "C"), rows_s)
    return db


JOIN_QUERY = "{Q(A, C) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ Q.C = s.C ∧ r.B = s.B]}"


@settings(max_examples=60, deadline=None)
@given(rows_ab, rows_ab)
def test_set_equals_deduped_bag(rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    query = parse(JOIN_QUERY)
    set_result = evaluate(query, db, SET_CONVENTIONS)
    bag_result = evaluate(query, db, BAG)
    assert set_result == bag_result.distinct()


@settings(max_examples=60, deadline=None)
@given(rows_ab, rows_ab)
def test_unnesting_preserves_set_semantics(rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    nested = parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}")
    flat = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
    assert evaluate(nested, db).set_equal(evaluate(flat, db))


@settings(max_examples=60, deadline=None)
@given(rows_ab)
def test_fio_equals_foi(rows_r):
    db = Database()
    db.create("R", ("A", "B"), rows_r)
    fio = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
    foi = parse(
        "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅"
        "[r2.A = r.A ∧ X.sm = sum(r2.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
    )
    assert evaluate(fio, db).set_equal(evaluate(foi, db))


@settings(max_examples=60, deadline=None)
@given(rows_ab)
def test_grouped_sum_matches_python(rows_r):
    db = Database()
    db.create("R", ("A", "B"), rows_r)
    query = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
    result = evaluate(query, db, BAG)
    expected = {}
    for a, b in rows_r:
        expected[a] = expected.get(a, 0) + b
    produced = {row["A"]: row["sm"] for row in result}
    assert produced == expected


@settings(max_examples=60, deadline=None)
@given(rows_ab, rows_ab)
def test_sql_translation_agrees(rows_r, rows_s):
    from repro.frontends.sql import to_arc

    db = make_db(rows_r, rows_s)
    arc = parse(JOIN_QUERY)
    from_sql = to_arc(
        "select R.A, S.C from R, S where R.B = S.B", database=db
    )
    assert evaluate(arc, db, BAG) == evaluate(from_sql, db, BAG)


@settings(max_examples=60, deadline=None)
@given(rows_ab)
def test_gamma_empty_always_one_row(rows_r):
    db = Database()
    db.create("R", ("A", "B"), rows_r)
    query = parse("{Q(ct) | ∃r ∈ R, γ ∅[Q.ct = count(*)]}")
    result = evaluate(query, db, BAG)
    assert len(result) == 1
    # Bag semantics: count(*) counts duplicate rows.
    assert result.sorted_rows()[0]["ct"] == len(rows_r)


@settings(max_examples=60, deadline=None)
@given(rows_ab)
def test_keyed_grouping_one_row_per_key(rows_r):
    db = Database()
    db.create("R", ("A", "B"), rows_r)
    query = parse("{Q(A, ct) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.ct = count(*)]}")
    result = evaluate(query, db, BAG)
    assert len(result) == len({a for a, _ in rows_r})


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(small_int, small_int), max_size=8))
def test_ancestor_matches_reference_closure(edges):
    db = Database()
    db.create("P", ("s", "t"), edges)
    query = parse(
        "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
        "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
    )
    result = evaluate(query, db)
    assert {(row["s"], row["t"]) for row in result} == transitive_closure_reference(
        set(edges)
    )


@settings(max_examples=40, deadline=None)
@given(rows_ab, rows_ab)
def test_semijoin_antijoin_partition(rows_r, rows_s):
    """Every R.A value appears in exactly one of semijoin/antijoin results."""
    db = make_db(rows_r, rows_s)
    semi = parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B ∧ ∃s ∈ S[r.B = s.B]]}")
    anti = parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B ∧ ¬(∃s ∈ S[r.B = s.B])]}")
    all_rows = evaluate(parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}"), db)
    semi_result = evaluate(semi, db)
    anti_result = evaluate(anti, db)
    union = semi_result.union(anti_result, all=False)
    assert union.set_equal(all_rows)
    overlap = set(semi_result.iter_distinct()) & set(anti_result.iter_distinct())
    assert not overlap


@settings(max_examples=40, deadline=None)
@given(rows_ab, rows_ab)
def test_left_join_preserves_left_keys(rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    left = parse(
        "{Q(A, C) | ∃r ∈ R, s ∈ S, left(r, s)[Q.A = r.A ∧ Q.C = s.C ∧ r.B = s.B]}"
    )
    result = evaluate(left, db)
    left_keys = {a for a, _ in rows_r}
    assert {row["A"] for row in result} == left_keys


@settings(max_examples=40, deadline=None)
@given(rows_ab, rows_ab)
def test_de_morgan_on_queries(rows_r, rows_s):
    """¬(∃s P) ≡ the complement filter: R splits exactly."""
    db = make_db(rows_r, rows_s)
    direct = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[r.B = s.B ∧ s.C = 0])]}")
    result = evaluate(direct, db)
    s_zero = {b for b, c in rows_s if c == 0}
    expected = {a for a, b in rows_r if b not in s_zero}
    assert {row["A"] for row in result} == expected
