"""Differential testing: production evaluator vs brute-force oracle.

Random first-order queries (conjunction, disjunction, negation, nested
existentials, NULLs) are generated with hypothesis and evaluated by both
the production evaluator and the deliberately naive reference oracle; any
disagreement is a bug in one of them.
"""

from hypothesis import given, settings, strategies as st

from repro.core import nodes as n
from repro.core.conventions import Conventions, NullComparison, SET_CONVENTIONS, Semantics
from repro.data import Database, NULL
from repro.engine import evaluate
from repro.engine.reference import reference_evaluate

BAG = Conventions(semantics=Semantics.BAG)
TWO_VL = SET_CONVENTIONS.with_(null_comparison=NullComparison.TWO_VALUED)

values = st.one_of(
    st.integers(min_value=0, max_value=4),
    st.just(NULL),
)
rows2 = st.lists(st.tuples(values, values), max_size=6)

SCHEMAS = {"R": ("A", "B"), "S": ("A", "B")}


def make_db(rows_r, rows_s):
    db = Database()
    db.create("R", SCHEMAS["R"], rows_r)
    db.create("S", SCHEMAS["S"], rows_s)
    return db


# -- query strategy ----------------------------------------------------------


@st.composite
def fo_queries(draw, depth=0, outer_vars=()):
    """Random first-order collections over R(A,B) / S(A,B)."""
    var = f"v{len(outer_vars)}"
    relation = draw(st.sampled_from(["R", "S"]))
    var_pool = list(outer_vars) + [var]

    def attr_expr():
        chosen = draw(st.sampled_from(var_pool))
        return n.Attr(chosen, draw(st.sampled_from(["A", "B"])))

    def leaf_expr():
        if draw(st.booleans()):
            return attr_expr()
        return n.Const(draw(st.integers(min_value=0, max_value=4)))

    conjuncts = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        op = draw(st.sampled_from(["=", "<>", "<", "<="]))
        conjuncts.append(n.Comparison(leaf_expr(), op, leaf_expr()))
    if draw(st.booleans()) and depth < 2:
        inner = draw(inner_tests(depth=depth + 1, outer_vars=tuple(var_pool)))
        conjuncts.append(inner)
    if draw(st.booleans()):
        conjuncts.append(n.IsNull(attr_expr(), draw(st.booleans())))
    head_expr = attr_expr()
    conjuncts.append(n.Comparison(n.Attr("Q", "out"), "=", head_expr))
    body = n.Quantifier(
        [n.Binding(var, n.RelationRef(relation))], n.make_and(conjuncts)
    )
    return n.Collection(n.Head("Q", ("out",)), body)


@st.composite
def inner_tests(draw, depth, outer_vars):
    """A boolean nested quantifier, possibly negated, possibly with an Or."""
    var = f"v{len(outer_vars)}"
    relation = draw(st.sampled_from(["R", "S"]))
    var_pool = list(outer_vars) + [var]

    def attr_expr():
        chosen = draw(st.sampled_from(var_pool))
        return n.Attr(chosen, draw(st.sampled_from(["A", "B"])))

    predicates = [
        n.Comparison(
            attr_expr(),
            draw(st.sampled_from(["=", "<>", "<"])),
            attr_expr(),
        )
        for _ in range(draw(st.integers(min_value=1, max_value=2)))
    ]
    body = n.make_and(predicates) if draw(st.booleans()) else n.make_or(predicates)
    quant = n.Quantifier([n.Binding(var, n.RelationRef(relation))], body)
    if draw(st.booleans()):
        return n.Not(quant)
    return quant


# -- differential properties -----------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(fo_queries(), rows2, rows2)
def test_set_semantics_agreement(query, rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    production = evaluate(query, db, SET_CONVENTIONS)
    oracle = reference_evaluate(query, db, SET_CONVENTIONS)
    assert production == oracle


@settings(max_examples=60, deadline=None)
@given(fo_queries(), rows2, rows2)
def test_bag_semantics_agreement(query, rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    production = evaluate(query, db, BAG)
    oracle = reference_evaluate(query, db, BAG)
    assert production == oracle


@settings(max_examples=60, deadline=None)
@given(fo_queries(), rows2, rows2)
def test_two_valued_agreement(query, rows_r, rows_s):
    db = make_db(rows_r, rows_s)
    production = evaluate(query, db, TWO_VL)
    oracle = reference_evaluate(query, db, TWO_VL)
    assert production == oracle


@settings(max_examples=60, deadline=None)
@given(rows2, rows2, st.integers(min_value=0, max_value=4))
def test_sentence_agreement(rows_r, rows_s, constant):
    from repro.core.parser import parse

    db = make_db(rows_r, rows_s)
    sentence = parse(
        f"∃r ∈ R[r.A = {constant} ∧ ¬(∃s ∈ S[s.B = r.B])]"
    )
    assert evaluate(sentence, db, SET_CONVENTIONS) == reference_evaluate(
        sentence, db, SET_CONVENTIONS
    )


@settings(max_examples=40, deadline=None)
@given(rows2, rows2)
def test_nested_emitter_agreement(rows_r, rows_s):
    """The §2.7 semijoin-multiplicity rule agrees between implementations."""
    from repro.core.parser import parse

    db = make_db(rows_r, rows_s)
    query = parse("{Q(out) | ∃r ∈ R[∃s ∈ S[Q.out = r.A ∧ r.B = s.B]]}")
    for conventions in (SET_CONVENTIONS, BAG):
        assert evaluate(query, db, conventions) == reference_evaluate(
            query, db, conventions
        )
