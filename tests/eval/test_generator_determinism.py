"""Generator determinism: same seed → byte-identical corpus, any process.

CI compares SCENARIO_REPORT.json run-to-run, which is only meaningful if
the corpus underneath is bit-stable.  The subprocess test is the real
guarantee: two *fresh interpreters* (with randomized ``PYTHONHASHSEED``,
which is exactly what breaks hash-order-dependent generators) must print
identical fingerprints for every scenario.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.workloads.scenarios import SCENARIOS

_SRC = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir, "src")

_FINGERPRINT_SCRIPT = """
import json
from repro.workloads.scenarios import SCENARIOS
print(json.dumps({
    name: {
        f"{size}:{seed}": scenario.fingerprint(size=size, seed=seed)
        for size in ("small", "medium")
        for seed in (0, 7)
    }
    for name, scenario in SCENARIOS.items()
}, sort_keys=True))
"""


def _fingerprints_in_subprocess(hashseed):
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = _SRC if not existing else _SRC + os.pathsep + existing
    env["PYTHONHASHSEED"] = hashseed
    output = subprocess.run(
        [sys.executable, "-c", _FINGERPRINT_SCRIPT],
        env=env,
        capture_output=True,
        check=True,
        text=True,
    ).stdout
    return output


def test_two_processes_produce_byte_identical_corpora():
    first = _fingerprints_in_subprocess(hashseed="1")
    second = _fingerprints_in_subprocess(hashseed="2")
    assert first == second  # byte-for-byte, across differing hash seeds
    assert set(json.loads(first)) == set(SCENARIOS)


def test_in_process_fingerprints_match_subprocess():
    subprocess_prints = json.loads(_fingerprints_in_subprocess(hashseed="3"))
    for name, scenario in SCENARIOS.items():
        for size in ("small", "medium"):
            for seed in (0, 7):
                assert (
                    scenario.fingerprint(size=size, seed=seed)
                    == subprocess_prints[name][f"{size}:{seed}"]
                )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_seed_changes_the_catalog(name):
    scenario = SCENARIOS[name]
    assert scenario.fingerprint(seed=0) != scenario.fingerprint(seed=1)
    assert scenario.fingerprint(size="small") != scenario.fingerprint(
        size="medium"
    )


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_payload_rows_are_plain_json_values(name):
    payload = SCENARIOS[name].corpus_payload(size="small", seed=0)
    # json round-trip with sorted keys is the canonical form fingerprints
    # hash; it must never contain engine objects (NULL maps to null).
    encoded = json.dumps(payload, sort_keys=True)
    assert json.loads(encoded) == json.loads(
        json.dumps(json.loads(encoded), sort_keys=True)
    )
    assert payload["queries"]  # texts ride along, pinned by the hash
