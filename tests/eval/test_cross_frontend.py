"""Cross-frontend equivalence: one question, four surface languages.

Every corpus query that carries more than one frontend text must evaluate
to the same answer under the reference oracle — positionally, since the
frontends disagree on column names by design.  This pins frontend drift
the per-language differential suites never exercised: a datalog translator
regression shows up here as retail/datalog diverging from retail/sql on
the *same* question.
"""

import pytest

from repro.core.conventions import SQL_CONVENTIONS
from repro.api import EvalOptions, Session
from repro.eval.harness import CONVENTIONS, normalize_result
from repro.workloads.scenarios import SCENARIOS

CASES = [
    pytest.param(scenario, query, id=f"{scenario.name}-{query.name}")
    for scenario in SCENARIOS.values()
    for query in scenario.queries()
]

MULTI_FRONTEND_CASES = [
    case for case in CASES if len(case.values[1].texts) > 1
]


@pytest.fixture(scope="module")
def catalogs():
    return {name: sc.catalog("small", 0) for name, sc in SCENARIOS.items()}


@pytest.mark.parametrize("scenario,query", MULTI_FRONTEND_CASES)
def test_frontends_agree_under_reference_oracle(scenario, query, catalogs):
    database = catalogs[scenario.name]
    session = Session(
        database,
        CONVENTIONS[query.conventions],
        options=EvalOptions(backend="reference"),
    )
    normalized = {
        frontend: normalize_result(
            session.prepare(text, frontend=frontend).run(),
            compare=query.compare,
        )
        for frontend, text in query.texts.items()
    }
    baseline_frontend = query.frontends[0]
    baseline = normalized[baseline_frontend]
    for frontend, form in normalized.items():
        assert form == baseline, (
            f"{scenario.name}/{query.name}: {frontend} disagrees with "
            f"{baseline_frontend}"
        )


@pytest.mark.parametrize("scenario,query", CASES)
def test_every_text_parses_and_answers(scenario, query, catalogs):
    database = catalogs[scenario.name]
    session = Session(
        database,
        CONVENTIONS[query.conventions],
        options=EvalOptions(backend="reference"),
    )
    for frontend, text in query.texts.items():
        result = session.prepare(text, frontend=frontend).run()
        kind, _payload = normalize_result(result, compare=query.compare)
        assert kind == "rows", (scenario.name, query.name, frontend)


def test_corpus_exercises_all_four_frontends_per_scenario():
    for name, scenario in SCENARIOS.items():
        covered = {
            frontend
            for query in scenario.queries()
            for frontend in query.frontends
        }
        assert covered == {"datalog", "rel", "sql", "trc"}, name


def test_datalog_filters_on_aggregate_targets():
    """The literal-ordering fix: a comparison may reference an aggregate
    target regardless of where it appears in the rule body."""
    from repro.data import Database
    from repro.frontends import load_query
    from repro.engine import evaluate

    db = Database()
    db.create("E", ("eid", "grp"), [(1, "a"), (2, "a"), (3, "b")])
    node = load_query(
        "Q(g, ct) :- E(e, g), ct = count e2 : {E(e2, g)}, ct >= 2.",
        "datalog",
        db,
    )
    result = evaluate(node, db, SQL_CONVENTIONS)
    rows = sorted(tuple(row[a] for a in result.schema) for row in result)
    assert rows == [("a", 2), ("a", 2)]
