"""Chaos over the corpus: generated workloads keep the PR 6 invariant.

The PR 6 chaos suite pinned "oracle answer or typed error" on three
hand-written queries; this module extends it to a *generated* scenario run
through the differential harness.  Whatever ``REPRO_FAILPOINTS`` the
environment (or this module) arms, every cell in the report must stay
``ok`` or ``typed_error`` — a fault may cost a fallback or a refusal, but
never a silently wrong answer.

CI's chaos matrix includes this file, so the env-driven test runs under
each armed spec; the in-process tests arm their own specs and restore the
environment's configuration afterwards.
"""

import pytest

from repro.backends.exec import reset_breakers, sqlite_exec
from repro.eval.harness import report_failures, run_scenario
from repro.util import failpoints

#: Specs chosen to cross the sites a corpus run actually exercises:
#: connection setup, catalog load, SQL rendering, and statement execution.
IN_PROCESS_SPECS = [
    "sqlite.execute=locked",
    "sqlite.connect=error",
    "sql.render=unsupported",
    "sqlite.execute=locked*2,catalog.load=error",
]


@pytest.fixture(autouse=True)
def clean_fault_state():
    # Arm nothing on entry; restore whatever the environment configured on
    # exit so this module composes with CI's REPRO_FAILPOINTS matrix.
    reset_breakers()
    sqlite_exec.clear_catalog_cache()
    yield
    failpoints.load_env()
    reset_breakers()
    sqlite_exec.clear_catalog_cache()


def _assert_invariant(report):
    assert report_failures(report) == []
    statuses = {cell["status"] for cell in report["cells"]}
    assert statuses <= {"ok", "typed_error"}
    for cell in report["cells"]:
        if cell["status"] == "typed_error":
            assert cell["error_type"], cell  # refusals carry a named type


def test_corpus_under_environment_failpoints():
    """The matrix entry: whatever CI armed via REPRO_FAILPOINTS holds."""
    failpoints.load_env()
    report = run_scenario(
        "eventlog", size="small", seed=0, backends=("sqlite",), run_nl=False
    )
    _assert_invariant(report)


@pytest.mark.parametrize("spec", IN_PROCESS_SPECS)
def test_corpus_under_injected_failpoints(spec):
    failpoints.configure(spec)
    try:
        report = run_scenario(
            "retail", size="small", seed=0, backends=("sqlite",), run_nl=False
        )
    finally:
        failpoints.reset()
    _assert_invariant(report)


def test_faults_do_not_corrupt_subsequent_clean_runs():
    failpoints.configure("sqlite.execute=locked*2,catalog.load=error")
    try:
        run_scenario(
            "retail", size="small", seed=0, backends=("sqlite",), run_nl=False
        )
    finally:
        failpoints.reset()
    reset_breakers()
    clean = run_scenario(
        "retail", size="small", seed=0, backends=("sqlite",), run_nl=False
    )
    _assert_invariant(clean)
    # With no faults armed the run must be fully clean, not merely typed.
    assert {cell["status"] for cell in clean["cells"]} == {"ok"}
