"""The differential harness: every corpus cell oracle-equal or typed.

This is the standing correctness net the ISSUE asks for: the full
(scenario × query × frontend × backend) matrix runs through the Session
API once per module (it is the expensive fixture), and the assertions
below slice the one report — cell verdicts, coverage accounting, phase
timings, nl scoring, and the report's JSON shape.
"""

import json

import pytest

from repro.data import NULL, Database, Relation
from repro.eval.harness import (
    DEFAULT_BACKENDS,
    normalize_result,
    report_failures,
    result_rows,
    results_agree,
    run_corpus,
    write_report,
)
from repro.workloads.scenarios import SCENARIOS, FEATURES


@pytest.fixture(scope="module")
def report():
    return run_corpus(size="small", seed=0)


class TestCellVerdicts:
    def test_every_cell_ok_or_typed(self, report):
        assert report_failures(report) == []
        statuses = {
            cell["status"]
            for sr in report["scenarios"].values()
            for cell in sr["cells"]
        }
        assert statuses <= {"ok", "typed_error"}

    def test_matrix_covers_scenarios_frontends_backends(self, report):
        # The acceptance floor: ≥ 3 scenarios × 4 frontends × 3 backends.
        assert report["summary"]["scenarios"] >= 3
        assert set(report["frontends"]) >= {"datalog", "rel", "sql", "trc"}
        assert set(report["backends"]) == set(DEFAULT_BACKENDS)
        for sr in report["scenarios"].values():
            backends_seen = {cell["backend"] for cell in sr["cells"]}
            assert backends_seen == set(DEFAULT_BACKENDS)
            frontends_seen = {cell["frontend"] for cell in sr["cells"]}
            assert frontends_seen == {"datalog", "rel", "sql", "trc"}

    def test_feature_tags_all_exercised(self, report):
        # Every feature in the vocabulary is carried by at least one cell.
        assert set(report["summary"]["feature_cells"]) == set(FEATURES)

    def test_cross_frontend_agreement_pinned(self, report):
        assert report["summary"]["cross_frontend_disagreements"] == []
        for sr in report["scenarios"].values():
            for qinfo in sr["queries"].values():
                assert qinfo["cross_frontend_agree"], qinfo


class TestCoverageAccounting:
    def test_reference_and_planner_fully_native(self, report):
        coverage = report["summary"]["coverage"]
        for backend in ("reference", "planner"):
            assert coverage[backend]["fallback"] == 0
            assert coverage[backend]["native"] == coverage[backend]["cells"]

    def test_sqlite_fallbacks_carry_named_reasons(self, report):
        # The corpus plants shapes SQLite must refuse (externals, the 3VL
        # NOT-EXISTS-over-NULLs hazard); each refusal names its reason.
        coverage = report["summary"]["coverage"]["sqlite"]
        assert coverage["fallback"] > 0
        assert coverage["reasons"]  # histogram is non-empty
        for sr in report["scenarios"].values():
            for cell in sr["cells"]:
                if cell["native"] is False:
                    assert cell["fallback_reasons"], cell

    def test_externals_fall_back_on_sqlite_only(self, report):
        cells = [
            cell
            for sr in report["scenarios"].values()
            for cell in sr["cells"]
            if "externals" in cell["features"]
        ]
        assert cells
        for cell in cells:
            expected_native = cell["backend"] != "sqlite"
            assert cell["native"] is expected_native, cell

    def test_probe_predictions_match_observed_dispatch(self, report):
        # probe_capabilities is the static prediction; dispatch is the
        # observation. The corpus pins them against each other.
        for sr in report["scenarios"].values():
            cells = {
                (c["query"], c["frontend"], c["backend"]): c
                for c in sr["cells"]
            }
            for qname, qinfo in sr["queries"].items():
                for frontend, verdicts in qinfo["probe_reasons"].items():
                    for backend, reasons in verdicts.items():
                        cell = cells[(qname, frontend, backend)]
                        if cell["status"] != "ok" or cell["native"] is None:
                            continue
                        assert cell["native"] == (not reasons), (
                            qname,
                            frontend,
                            backend,
                            reasons,
                        )


class TestObservability:
    def test_cells_record_phase_timings_and_latency(self, report):
        for sr in report["scenarios"].values():
            for cell in sr["cells"]:
                assert cell["elapsed_ms"] >= 0
                assert "query" in cell["phases"], cell

    def test_parse_timings_recorded_per_frontend(self, report):
        for sr in report["scenarios"].values():
            for qinfo in sr["queries"].values():
                assert set(qinfo["parse_ms"]) == set(qinfo["frontends"])


class TestNlScoring:
    def test_accuracy_recorded_per_scenario(self, report):
        for name, sr in report["scenarios"].items():
            nl = sr["nl"]
            assert nl is not None, name
            assert nl["gold_cases"] > 0
            assert 0.0 <= nl["accuracy"] <= 1.0
            assert len(nl["per_case"]) == nl["cases"]

    def test_expected_refusals_are_separate_from_accuracy(self, report):
        nl = report["summary"]["nl"]
        assert nl["cases"] > nl["gold_cases"]  # some cases expect refusal
        assert nl["accuracy"] == pytest.approx(
            nl["gold_matched"] / nl["gold_cases"]
        )


class TestReportShape:
    def test_report_is_json_serializable_and_round_trips(self, report, tmp_path):
        path = tmp_path / "SCENARIO_REPORT.json"
        write_report(report, path)
        loaded = json.loads(path.read_text())
        assert loaded["version"] == report["version"]
        assert loaded["summary"]["cells"] == report["summary"]["cells"]
        assert set(loaded["scenarios"]) == set(SCENARIOS)

    def test_scenario_blocks_carry_catalog_and_fingerprint(self, report):
        for name, sr in report["scenarios"].items():
            assert sr["fingerprint"] == SCENARIOS[name].fingerprint(
                size="small", seed=0
            )
            assert all(count > 0 for count in sr["catalog"].values())

    def test_oracle_rows_are_capped(self, report):
        for sr in report["scenarios"].values():
            for qinfo in sr["queries"].values():
                if qinfo["oracle_rows"] is not None:
                    assert len(qinfo["oracle_rows"]) <= 20


class TestNormalization:
    def _relation(self, rows, schema=("a", "b")):
        return Relation("R", schema, rows)

    def test_bag_keeps_multiplicities_set_collapses(self):
        twice = self._relation([(1, 2), (1, 2)])
        once = self._relation([(1, 2)])
        assert not results_agree(twice, once, compare="bag")
        assert results_agree(twice, once, compare="set")

    def test_positional_comparison_ignores_column_names(self):
        left = self._relation([(1, 2)], schema=("a", "b"))
        right = self._relation([(1, 2)], schema=("x", "y"))
        assert results_agree(left, right)

    def test_null_and_float_normalization(self):
        left = self._relation([(NULL, 0.1 + 0.2)])
        right = self._relation([(NULL, 0.3)])
        assert results_agree(left, right)
        kind, rows = normalize_result(left)
        assert kind == "rows" and rows[0][0] is None

    def test_result_rows_are_json_ready(self):
        rows = result_rows(self._relation([(NULL, 1)]))
        assert rows == [[None, 1]]
        assert json.dumps(rows)


class TestCliEntryPoint:
    def test_eval_corpus_writes_report_and_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "SCENARIO_REPORT.json"
        code = main(
            [
                "eval-corpus",
                "--scenario",
                "retail",
                "--size",
                "small",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "nl accuracy" in out
        loaded = json.loads(path.read_text())
        assert loaded["summary"]["mismatch"] == 0
        assert loaded["summary"]["error"] == 0

    def test_eval_corpus_rejects_unknown_scenario(self, capsys):
        from repro.cli import main

        code = main(["eval-corpus", "--scenario", "nope"])
        assert code == 2  # ArcError path would be 2; LookupError is typed
