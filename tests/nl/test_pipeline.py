"""The NL -> ARC -> validate -> SQL pipeline (experiment E20's claims)."""

import pytest

from repro.nl import Nl2ArcPipeline, default_grammar
from repro.workloads.instances import employees_demo

from ..conftest import rows_as_tuples


@pytest.fixture
def pipeline():
    return Nl2ArcPipeline(database=employees_demo())


class TestRequests:
    def test_grouped_aggregate(self, pipeline):
        result = pipeline.run("average salary per department")
        assert result.ok
        rows = {(row["dept"], row["value"]) for row in result.result}
        assert ("marketing", 52.5) in rows

    def test_having(self, pipeline):
        result = pipeline.run("departments with total salary at least 100")
        assert result.ok
        assert {row["dept"] for row in result.result} == {"marketing", "engineering"}

    def test_correlated_aggregate(self, pipeline):
        result = pipeline.run("employees earning more than their department average")
        assert result.ok
        assert {row["name"] for row in result.result} == {"ann", "eva"}

    def test_selection(self, pipeline):
        result = pipeline.run("employees in the sales department")
        assert {row["name"] for row in result.result} == {"fay"}

    def test_antijoin(self, pipeline):
        result = pipeline.run("departments without any employee earning over 80")
        assert {row["dept"] for row in result.result} == {"marketing", "sales"}

    def test_count(self, pipeline):
        result = pipeline.run("how many employees are there")
        assert rows_as_tuples(result.result) == [(6,)]

    def test_unmatched_request(self, pipeline):
        result = pipeline.run("please draw me a pelican riding a bicycle")
        assert not result.ok
        assert "no template matches" in result.error


class TestArchitecture:
    """The paper's claim: every stage is observable and machine-checkable."""

    def test_all_modalities_present(self, pipeline):
        result = pipeline.run("average salary per department")
        assert result.comprehension and "γ" in result.comprehension
        assert result.alt and "GROUPING" in result.alt
        assert result.higraph and "quantifier" in result.higraph
        assert result.sql and "group by" in result.sql

    def test_validation_stage_runs(self, pipeline):
        result = pipeline.run("average salary per department")
        assert result.validation is not None and result.validation.ok

    def test_rendered_sql_executes_identically(self, pipeline):
        """Render to SQL, parse the SQL back, evaluate: same answer
        (the round-trip property the architecture depends on)."""
        from repro.core.conventions import SQL_CONVENTIONS
        from repro.engine import evaluate
        from repro.frontends.sql import to_arc

        result = pipeline.run("average salary per department")
        back = to_arc(result.sql, database=pipeline.database)
        again = evaluate(back, pipeline.database, SQL_CONVENTIONS)
        assert again == result.result

    def test_intent_comparison_between_generations(self, pipeline):
        """Two phrasings of the same intent produce the same pattern."""
        from repro.analysis import pattern_equal

        a = pipeline.run("average salary per department")
        b = pipeline.run("avg salary by department")
        assert a.ok and b.ok
        assert pattern_equal(a.arc, b.arc)

    def test_batch(self, pipeline):
        results = pipeline.batch(
            ["average salary per department", "how many employees"]
        )
        assert all(r.ok for r in results)

    def test_no_execute(self, pipeline):
        result = pipeline.run("average salary per department", execute=False)
        assert result.ok and result.result is None


class TestGrammar:
    def test_default_grammar_rules_nonempty(self):
        grammar = default_grammar()
        assert len(grammar.rules) >= 5

    def test_generate_returns_rule_description(self):
        grammar = default_grammar()
        _, description = grammar.generate("total salary per department")
        assert "FIO" in description or "aggregate" in description
