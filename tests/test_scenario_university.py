"""End-to-end scenario: a realistic multi-table schema worked across the
whole library.

A small university database (students, courses, enrollments, prerequisites)
expressed as a corpus :class:`~repro.workloads.scenarios.Scenario` and run
through the execution-based differential harness: every query cell is
checked against the reference oracle on all three backends, cross-frontend
texts are pinned against each other, and the expected answers below are
asserted with the harness's own normalization helpers
(:func:`results_agree`) instead of bespoke comparison code.
"""

import pytest

from repro.api import EvalOptions, Session
from repro.core import rewrites
from repro.core.conventions import SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import NULL, Database, Relation
from repro.engine import evaluate
from repro.eval.harness import report_failures, results_agree, run_scenario
from repro.workloads.scenarios import CorpusQuery, Scenario

STUDENTS = [
    ("s1", "ada", "cs"),
    ("s2", "bob", "cs"),
    ("s3", "cyd", "math"),
    ("s4", "dee", "math"),
    ("s5", "eli", "bio"),
]
COURSES = [
    ("c1", "intro", 4),
    ("c2", "algo", 6),
    ("c3", "db", 6),
    ("c4", "ml", 8),
    ("c5", "stats", 4),
]
# (student, course, grade); NULL = enrolled, not graded yet.
ENROLLED = [
    ("s1", "c1", 1.0),
    ("s1", "c2", 1.3),
    ("s1", "c3", 1.0),
    ("s1", "c4", NULL),
    ("s2", "c1", 2.0),
    ("s2", "c3", 2.3),
    ("s3", "c1", 1.7),
    ("s3", "c5", 1.0),
    ("s4", "c5", 3.0),
]
PREREQ = [
    ("c1", "c2"),
    ("c2", "c4"),
    ("c1", "c3"),
    ("c3", "c4"),
    ("c5", "c4"),
]


class UniversityScenario(Scenario):
    """The fixed teaching catalog as a harness scenario (size/seed inert)."""

    name = "university"
    description = "students / courses / enrollments / prerequisites"

    def catalog(self, size="small", seed=0):
        database = Database()
        database.create("Student", ("sid", "name", "major"), STUDENTS)
        database.create("Course", ("cid", "title", "credits"), COURSES)
        database.create("Enrolled", ("sid", "cid", "grade"), ENROLLED)
        database.create("Prereq", ("pre", "post"), PREREQ)
        return database

    def queries(self):
        return (
            CorpusQuery(
                name="students_in_db_course",
                features=("join",),
                compare="set",
                texts={
                    "sql": (
                        "select s.name from Student s, Enrolled e "
                        "where s.sid = e.sid and e.cid = 'c3'"
                    ),
                    "trc": (
                        "{s.name | s in Student and exists e "
                        "[e in Enrolled and e.sid = s.sid and e.cid = 'c3']}"
                    ),
                    "datalog": 'Q(n) :- Student(s, n, m), Enrolled(s, "c3", g).',
                },
            ),
            CorpusQuery(
                name="never_enrolled",
                features=("negation",),
                texts={
                    "sql": (
                        "select s.name from Student s where not exists "
                        "(select 1 from Enrolled e where e.sid = s.sid)"
                    ),
                    "trc": (
                        "{s.name | s in Student and not exists e "
                        "[e in Enrolled and e.sid = s.sid]}"
                    ),
                    "datalog": (
                        "Takes(s) :- Enrolled(s, c, g).\n"
                        "Q(n) :- Student(s, n, m), !Takes(s)."
                    ),
                },
            ),
            CorpusQuery(
                name="gpa_per_student",
                features=("grouping", "null-3vl"),
                description="NULL grades are skipped by avg — SQL semantics",
                texts={
                    "sql": (
                        "select e.sid, avg(e.grade) gpa "
                        "from Enrolled e group by e.sid"
                    ),
                },
            ),
            CorpusQuery(
                name="busy_students_having",
                features=("grouping", "having"),
                texts={
                    "sql": (
                        "select e.sid, count(*) ct from Enrolled e "
                        "group by e.sid having count(*) >= 2"
                    ),
                },
            ),
            CorpusQuery(
                name="zero_graded_count",
                features=("correlated", "grouping", "null-3vl"),
                description=(
                    "γ∅ keeps zero-count students — the count-bug shape"
                ),
                texts={
                    "sql": (
                        "select s.name from Student s where 0 = "
                        "(select count(e.grade) from Enrolled e "
                        "where e.sid = s.sid and e.grade is not null)"
                    ),
                },
            ),
            CorpusQuery(
                name="grade_not_in_s1",
                features=("negation", "null-3vl"),
                description="NOT IN poisoned by s1's NULL grade: empty",
                texts={
                    "sql": (
                        "select e.sid from Enrolled e where e.grade not in "
                        "(select e2.grade from Enrolled e2 "
                        "where e2.sid = 's1')"
                    ),
                },
            ),
            CorpusQuery(
                name="transitive_prereqs",
                features=("recursion",),
                compare="set",
                texts={
                    "datalog": (
                        "A(x, y) :- Prereq(x, y).\n"
                        "A(x, z) :- Prereq(x, y), A(y, z)."
                    ),
                    "arc": (
                        "{A(pre, post) | ∃p ∈ Prereq[A.pre = p.pre ∧ "
                        "A.post = p.post] ∨ ∃p ∈ Prereq, a2 ∈ A"
                        "[A.pre = p.pre ∧ p.post = a2.pre ∧ "
                        "A.post = a2.post]}"
                    ),
                },
            ),
            CorpusQuery(
                name="total_credits",
                features=("correlated", "grouping"),
                texts={
                    "datalog": (
                        "Total(s, t) :- Enrolled(s, _, _), "
                        "t = sum c : {Enrolled(s, x, _), Course(x, _, c)}."
                    ),
                },
            ),
            CorpusQuery(
                name="division_every_4_credit_course",
                features=("negation",),
                description="students enrolled in all 4-credit courses",
                texts={
                    "arc": (
                        "{Q(name) | ∃s ∈ Student[Q.name = s.name ∧ "
                        "¬(∃c ∈ Course[c.credits = 4 ∧ "
                        "¬(∃e ∈ Enrolled[e.sid = s.sid ∧ "
                        "e.cid = c.cid])])]}"
                    ),
                },
            ),
            CorpusQuery(
                name="left_join_keeps_ungraded",
                features=("join", "null-3vl"),
                texts={
                    "arc": (
                        "{Q(name, cid) | ∃s ∈ Student, e ∈ Enrolled, "
                        "left(s, e)[Q.name = s.name ∧ Q.cid = e.cid ∧ "
                        "s.sid = e.sid]}"
                    ),
                },
            ),
        )


SCENARIO = UniversityScenario()


@pytest.fixture(scope="module")
def report():
    return run_scenario(SCENARIO, size="small", seed=0, run_nl=False)


@pytest.fixture
def db():
    return SCENARIO.catalog()


@pytest.fixture
def oracle(db):
    return Session(db, SQL_CONVENTIONS, options=EvalOptions(backend="reference"))


def expect(schema, rows):
    return Relation("Expected", schema, rows)


class TestDifferentialHarness:
    def test_every_cell_oracle_equal_on_all_backends(self, report):
        assert report_failures(report) == []
        assert {cell["status"] for cell in report["cells"]} == {"ok"}

    def test_cross_frontend_texts_agree(self, report):
        for qname, qinfo in report["queries"].items():
            assert qinfo["cross_frontend_agree"], qname

    def test_backends_cover_the_full_matrix(self, report):
        assert {cell["backend"] for cell in report["cells"]} == {
            "reference",
            "planner",
            "sqlite",
        }


class TestAnswers:
    """Expected values asserted through the harness normalization."""

    def _run(self, oracle, qname, frontend=None):
        query = {q.name: q for q in SCENARIO.queries()}[qname]
        frontend = frontend or query.frontends[0]
        result = oracle.prepare(query.texts[frontend], frontend=frontend).run()
        return query, result

    def test_students_in_db_course(self, oracle):
        query, result = self._run(oracle, "students_in_db_course")
        assert results_agree(
            result, expect(("name",), [("ada",), ("bob",)]), compare="set"
        )

    def test_never_enrolled(self, oracle):
        query, result = self._run(oracle, "never_enrolled")
        assert results_agree(result, expect(("name",), [("eli",)]))

    def test_gpa_per_student_skips_null_grades(self, oracle):
        query, result = self._run(oracle, "gpa_per_student")
        expected = {}
        for sid in {s for s, _, _ in ENROLLED}:
            grades = [g for s, _, g in ENROLLED if s == sid and g is not NULL]
            expected[sid] = sum(grades) / len(grades)
        assert results_agree(
            result, expect(("sid", "gpa"), sorted(expected.items()))
        )

    def test_busy_students_having(self, oracle):
        query, result = self._run(oracle, "busy_students_having")
        assert results_agree(
            result,
            expect(("sid", "ct"), [("s1", 4), ("s2", 2), ("s3", 2)]),
        )

    def test_zero_graded_count_keeps_gamma_empty_row(self, oracle):
        # eli (never enrolled) has count 0 — the γ∅ scope keeps the row.
        query, result = self._run(oracle, "zero_graded_count")
        assert results_agree(result, expect(("name",), [("eli",)]))

    def test_not_in_with_null_grades_is_empty(self, oracle):
        query, result = self._run(oracle, "grade_not_in_s1")
        assert results_agree(result, expect(("sid",), []))

    def test_transitive_prerequisites(self, oracle):
        query, result = self._run(oracle, "transitive_prereqs", "datalog")
        pairs = {(row["x"], row["y"]) for row in result.iter_distinct()}
        assert ("c1", "c4") in pairs  # c1 -> c2 -> c4
        assert ("c5", "c4") in pairs
        assert ("c4", "c1") not in pairs

    def test_total_credits(self, oracle):
        query, result = self._run(oracle, "total_credits")
        credits = {cid: cr for cid, _, cr in COURSES}
        expected = {}
        for sid in {s for s, _, _ in ENROLLED}:
            taken = {c for s, c, _ in ENROLLED if s == sid}
            expected[sid] = sum(credits[c] for c in taken)
        assert results_agree(
            result,
            expect(("s", "t"), sorted(expected.items())),
            compare="set",
        )

    def test_division_took_every_4_credit_course(self, oracle, db):
        query, result = self._run(oracle, "division_every_4_credit_course")
        four_credit = {cid for cid, _, cr in COURSES if cr == 4}
        expected = [
            (name,)
            for sid, name, _ in STUDENTS
            if four_credit <= {c for s, c, _ in ENROLLED if s == sid}
        ]
        assert results_agree(result, expect(("name",), expected), compare="set")
        from repro.analysis import detect_patterns

        node = oracle.prepare(
            query.texts["arc"], frontend="arc"
        ).node
        assert "division" in detect_patterns(node)

    def test_left_join_keeps_ungraded(self, oracle):
        query, result = self._run(oracle, "left_join_keeps_ungraded")
        eli_rows = [row for row in result if row["name"] == "eli"]
        assert len(eli_rows) == 1 and eli_rows[0]["cid"] is NULL

    def test_ready_for_ml_program(self, db):
        """Students who completed every (transitive) prerequisite of c4."""
        program = parse(
            "A := {A(pre, post) | ∃p ∈ Prereq[A.pre = p.pre ∧ A.post = p.post] ∨ "
            "∃p ∈ Prereq, a2 ∈ A[A.pre = p.pre ∧ p.post = a2.pre ∧ "
            "A.post = a2.post]} ;\n"
            "{Q(name) | ∃s ∈ Student[Q.name = s.name ∧ "
            "¬(∃a ∈ A[a.post = 'c4' ∧ "
            "¬(∃e ∈ Enrolled[e.sid = s.sid ∧ e.cid = a.pre ∧ "
            "e.grade is not null])])]}"
        )
        result = evaluate(program, db)
        # ada completed c1, c2, c3 but not c5 (a prereq of c4): not ready.
        prereqs_of_c4 = {"c1", "c2", "c3", "c5"}
        expected = [
            (name,)
            for sid, name, _ in STUDENTS
            if prereqs_of_c4
            <= {c for s, c, g in ENROLLED if s == sid and g is not NULL}
        ]
        assert results_agree(
            result, expect(("name",), expected), compare="set"
        )


class TestRewritesAndAnalysis:
    def test_unnest_preserves_semijoin(self, db):
        nested = parse(
            "{Q(name) | ∃s ∈ Student[∃e ∈ Enrolled"
            "[Q.name = s.name ∧ e.sid = s.sid]]}"
        )
        flat = rewrites.unnest(nested)
        assert results_agree(
            evaluate(nested, db), evaluate(flat, db), compare="set"
        )

    def test_cross_language_pattern_match(self, db):
        from repro.analysis import same_pattern
        from repro.frontends.sql import to_arc

        sql_form = to_arc(
            "select Enrolled.sid, count(*) ct from Enrolled group by Enrolled.sid",
            database=db,
        )
        arc_form = parse(
            "{Q(sid, ct) | ∃e ∈ Enrolled, γ e.sid"
            "[Q.sid = e.sid ∧ Q.ct = count(*)]}"
        )
        assert same_pattern(sql_form, arc_form)

    def test_corpus_over_scenario(self, db):
        from repro.analysis import QueryCorpus
        from repro.frontends.sql import to_arc

        corpus = QueryCorpus()
        corpus.add(
            "antijoin",
            to_arc(
                "select Student.name from Student where not exists "
                "(select 1 from Enrolled where Enrolled.sid = Student.sid)",
                database=db,
            ),
        )
        corpus.add(
            "grouped",
            to_arc(
                "select Enrolled.sid, count(*) ct from Enrolled group by Enrolled.sid",
                database=db,
            ),
        )
        histogram = corpus.pattern_histogram()
        assert histogram["antijoin"] == 1
        assert histogram["fio-aggregation"] == 1
