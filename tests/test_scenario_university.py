"""End-to-end scenario: a realistic multi-table schema worked across the
whole library.

A small university database (students, courses, enrollments, prerequisites)
exercised with a dozen queries spanning every frontend and every feature
family: joins, semijoins/antijoins, division, grouped aggregates with
HAVING, correlated scalars, outer joins, recursion over prerequisites,
NULL grades, conventions, rewrites, and pattern analysis — each answer
cross-checked against a direct Python computation.
"""

import pytest

from repro.core import rewrites
from repro.core.conventions import SET_CONVENTIONS, SQL_CONVENTIONS
from repro.core.parser import parse
from repro.data import Database, NULL
from repro.engine import evaluate
from repro.frontends import datalog
from repro.frontends.sql import to_arc

STUDENTS = [
    ("s1", "ada", "cs"),
    ("s2", "bob", "cs"),
    ("s3", "cyd", "math"),
    ("s4", "dee", "math"),
    ("s5", "eli", "bio"),
]
COURSES = [
    ("c1", "intro", 4),
    ("c2", "algo", 6),
    ("c3", "db", 6),
    ("c4", "ml", 8),
    ("c5", "stats", 4),
]
# (student, course, grade); NULL = enrolled, not graded yet.
ENROLLED = [
    ("s1", "c1", 1.0),
    ("s1", "c2", 1.3),
    ("s1", "c3", 1.0),
    ("s1", "c4", NULL),
    ("s2", "c1", 2.0),
    ("s2", "c3", 2.3),
    ("s3", "c1", 1.7),
    ("s3", "c5", 1.0),
    ("s4", "c5", 3.0),
]
PREREQ = [
    ("c1", "c2"),
    ("c2", "c4"),
    ("c1", "c3"),
    ("c3", "c4"),
    ("c5", "c4"),
]


@pytest.fixture
def db():
    database = Database()
    database.create("Student", ("sid", "name", "major"), STUDENTS)
    database.create("Course", ("cid", "title", "credits"), COURSES)
    database.create("Enrolled", ("sid", "cid", "grade"), ENROLLED)
    database.create("Prereq", ("pre", "post"), PREREQ)
    return database


def names(result, attr="name"):
    return sorted(row[attr] for row in result.iter_distinct())


class TestJoins:
    def test_students_in_db_course(self, db):
        query = to_arc(
            "select Student.name from Student, Enrolled "
            "where Student.sid = Enrolled.sid and Enrolled.cid = 'c3'",
            database=db,
        )
        assert names(evaluate(query, db, SQL_CONVENTIONS)) == ["ada", "bob"]

    def test_semijoin_enrolled_anywhere(self, db):
        query = parse(
            "{Q(name) | ∃s ∈ Student[Q.name = s.name ∧ "
            "∃e ∈ Enrolled[e.sid = s.sid]]}"
        )
        assert names(evaluate(query, db)) == ["ada", "bob", "cyd", "dee"]

    def test_antijoin_never_enrolled(self, db):
        query = to_arc(
            "select Student.name from Student where not exists "
            "(select 1 from Enrolled where Enrolled.sid = Student.sid)",
            database=db,
        )
        assert names(evaluate(query, db, SQL_CONVENTIONS)) == ["eli"]

    def test_division_took_every_4_credit_course(self, db):
        """Students enrolled in *all* 4-credit courses (c1 and c5)."""
        query = parse(
            "{Q(name) | ∃s ∈ Student[Q.name = s.name ∧ "
            "¬(∃c ∈ Course[c.credits = 4 ∧ "
            "¬(∃e ∈ Enrolled[e.sid = s.sid ∧ e.cid = c.cid])])]}"
        )
        expected = []
        four_credit = {cid for cid, _, cr in COURSES if cr == 4}
        for sid, name, _ in STUDENTS:
            taken = {c for s, c, _ in ENROLLED if s == sid}
            if four_credit <= taken:
                expected.append(name)
        assert names(evaluate(query, db)) == sorted(expected)
        from repro.analysis import detect_patterns

        assert "division" in detect_patterns(query)


class TestAggregates:
    def test_gpa_per_student(self, db):
        """NULL grades are skipped by avg — SQL semantics."""
        query = to_arc(
            "select Enrolled.sid, avg(Enrolled.grade) gpa from Enrolled "
            "group by Enrolled.sid",
            database=db,
        )
        result = evaluate(query, db, SQL_CONVENTIONS)
        produced = {row["sid"]: round(row["gpa"], 2) for row in result}
        expected = {}
        for sid in {s for s, _, _ in ENROLLED}:
            grades = [g for s, _, g in ENROLLED if s == sid and g is not NULL]
            expected[sid] = round(sum(grades) / len(grades), 2)
        assert produced == expected

    def test_busy_students_having(self, db):
        query = to_arc(
            "select Enrolled.sid, count(*) ct from Enrolled "
            "group by Enrolled.sid having count(*) >= 2",
            database=db,
        )
        result = evaluate(query, db, SQL_CONVENTIONS)
        assert {row["sid"] for row in result} == {"s1", "s2", "s3"}

    def test_correlated_scalar_count(self, db):
        """Students whose enrollment count equals the number of courses in
        their major's intro track — the count-bug pattern shape, safely."""
        query = to_arc(
            "select Student.name from Student where 0 = "
            "(select count(Enrolled.grade) from Enrolled "
            "where Enrolled.sid = Student.sid and Enrolled.grade is not null)",
            database=db,
        )
        # eli (never enrolled) has count 0 — the γ∅ scope keeps the row.
        assert names(evaluate(query, db, SQL_CONVENTIONS)) == ["eli"]

    def test_souffle_rule_total_credits(self, db):
        program = datalog.to_arc(
            "Total(s, t) :- Enrolled(s, _, _), "
            "t = sum c : {Enrolled(s, x, _), Course(x, _, c)}.",
            database=db,
        )
        result = evaluate(program, db, SET_CONVENTIONS)
        produced = {row["s"]: row["t"] for row in result}
        credits = {cid: cr for cid, _, cr in COURSES}
        expected = {}
        for sid in {s for s, _, _ in ENROLLED}:
            taken = {c for s, c, _ in ENROLLED if s == sid}
            expected[sid] = sum(credits[c] for c in taken)
        assert produced == expected


class TestOuterJoinAndNulls:
    def test_left_join_keeps_ungraded(self, db):
        query = parse(
            "{Q(name, cid) | ∃s ∈ Student, e ∈ Enrolled, left(s, e)"
            "[Q.name = s.name ∧ Q.cid = e.cid ∧ s.sid = e.sid]}"
        )
        result = evaluate(query, db, SQL_CONVENTIONS)
        eli_rows = [row for row in result if row["name"] == "eli"]
        assert len(eli_rows) == 1 and eli_rows[0]["cid"] is NULL

    def test_not_in_with_null_grades(self, db):
        """grade NOT IN (...) over a column with NULLs: 3VL at work."""
        query = to_arc(
            "select Enrolled.sid from Enrolled where Enrolled.grade not in "
            "(select E2.grade from Enrolled E2 where E2.sid = 's1')",
            database=db,
        )
        # s1 has a NULL grade, so every NOT IN test is poisoned: empty.
        assert evaluate(query, db, SQL_CONVENTIONS).is_empty()


class TestRecursion:
    def test_transitive_prerequisites(self, db):
        query = parse(
            "{A(pre, post) | ∃p ∈ Prereq[A.pre = p.pre ∧ A.post = p.post] ∨ "
            "∃p ∈ Prereq, a2 ∈ A[A.pre = p.pre ∧ p.post = a2.pre ∧ "
            "A.post = a2.post]}"
        )
        result = evaluate(query, db)
        pairs = {(row["pre"], row["post"]) for row in result}
        assert ("c1", "c4") in pairs  # c1 -> c2 -> c4
        assert ("c5", "c4") in pairs
        assert ("c4", "c1") not in pairs

    def test_ready_for_ml(self, db):
        """Students who completed every (transitive) prerequisite of c4."""
        program = parse(
            "A := {A(pre, post) | ∃p ∈ Prereq[A.pre = p.pre ∧ A.post = p.post] ∨ "
            "∃p ∈ Prereq, a2 ∈ A[A.pre = p.pre ∧ p.post = a2.pre ∧ "
            "A.post = a2.post]} ;\n"
            "{Q(name) | ∃s ∈ Student[Q.name = s.name ∧ "
            "¬(∃a ∈ A[a.post = 'c4' ∧ "
            "¬(∃e ∈ Enrolled[e.sid = s.sid ∧ e.cid = a.pre ∧ "
            "e.grade is not null])])]}"
        )
        result = evaluate(program, db)
        # ada completed c1, c2, c3 but not c5 (a prereq of c4): not ready.
        prereqs_of_c4 = {"c1", "c2", "c3", "c5"}
        expected = []
        for sid, name, _ in STUDENTS:
            done = {c for s, c, g in ENROLLED if s == sid and g is not NULL}
            if prereqs_of_c4 <= done:
                expected.append(name)
        assert names(result) == sorted(expected)


class TestRewritesAndAnalysis:
    def test_unnest_preserves_semijoin(self, db):
        nested = parse(
            "{Q(name) | ∃s ∈ Student[∃e ∈ Enrolled"
            "[Q.name = s.name ∧ e.sid = s.sid]]}"
        )
        flat = rewrites.unnest(nested)
        assert evaluate(nested, db).set_equal(evaluate(flat, db))

    def test_cross_language_pattern_match(self, db):
        from repro.analysis import same_pattern

        sql_form = to_arc(
            "select Enrolled.sid, count(*) ct from Enrolled group by Enrolled.sid",
            database=db,
        )
        arc_form = parse(
            "{Q(sid, ct) | ∃e ∈ Enrolled, γ e.sid"
            "[Q.sid = e.sid ∧ Q.ct = count(*)]}"
        )
        assert same_pattern(sql_form, arc_form)

    def test_corpus_over_scenario(self, db):
        from repro.analysis import QueryCorpus

        corpus = QueryCorpus()
        corpus.add(
            "antijoin",
            to_arc(
                "select Student.name from Student where not exists "
                "(select 1 from Enrolled where Enrolled.sid = Student.sid)",
                database=db,
            ),
        )
        corpus.add(
            "grouped",
            to_arc(
                "select Enrolled.sid, count(*) ct from Enrolled group by Enrolled.sid",
                database=db,
            ),
        )
        histogram = corpus.pattern_histogram()
        assert histogram["antijoin"] == 1
        assert histogram["fio-aggregation"] == 1
