"""Tests for the shared comprehension-syntax lexer."""

import pytest

from repro.core.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING, literal_value, tokenize
from repro.data.values import NULL
from repro.errors import ParseError


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text) if t.type != EOF]


class TestUnicode:
    def test_symbols_normalize_to_keywords(self):
        assert kinds("∃ ∈ ∧ ∨ ¬ γ ∅") == [
            (KEYWORD, "exists"),
            (KEYWORD, "in"),
            (KEYWORD, "and"),
            (KEYWORD, "or"),
            (KEYWORD, "not"),
            (KEYWORD, "gamma"),
            (KEYWORD, "empty"),
        ]

    def test_ascii_words_equal_unicode(self):
        assert kinds("exists in and or not gamma empty") == kinds("∃ ∈ ∧ ∨ ¬ γ ∅")

    def test_case_insensitive_keywords(self):
        assert kinds("EXISTS")[0] == (KEYWORD, "exists")


class TestTokens:
    def test_identifiers(self):
        assert kinds("r2 foo_bar $1")[0] == (IDENT, "r2")
        assert kinds("$1") == [(IDENT, "$1")]

    def test_numbers(self):
        assert kinds("42") == [(NUMBER, "42")]
        assert kinds("3.5") == [(NUMBER, "3.5")]

    def test_number_then_attribute_dot(self):
        # "r.1" style and "1." followed by non-digit must not merge.
        tokens = kinds("x.2")
        assert tokens == [(IDENT, "x"), ("SYMBOL", "."), (NUMBER, "2")]

    def test_strings(self):
        assert kinds("'hello world'") == [(STRING, "hello world")]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_comments(self):
        assert kinds("a # comment\nb") == [(IDENT, "a"), (IDENT, "b")]

    def test_multichar_symbols(self):
        assert [v for _, v in kinds("<> != <= >= :=")] == ["<>", "!=", "<=", ">=", ":="]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("@")


class TestLiteralValue:
    def test_values(self):
        assert literal_value(tokenize("5")[0]) == 5
        assert literal_value(tokenize("5.5")[0]) == 5.5
        assert literal_value(tokenize("'x'")[0]) == "x"
        assert literal_value(tokenize("true")[0]) is True
        assert literal_value(tokenize("false")[0]) is False
        assert literal_value(tokenize("null")[0]) is NULL

    def test_non_literal(self):
        with pytest.raises(ParseError):
            literal_value(tokenize("foo")[0])
