"""Property-based round-trip tests: render(parse(x)) is a fixed point.

A hypothesis strategy generates random well-formed ARC ASTs; rendering then
reparsing must reproduce a structurally identical tree, in both the Unicode
and ASCII spellings of the comprehension modality.
"""

from hypothesis import given, settings, strategies as st

from repro.backends.comprehension import render, render_ascii
from repro.core import nodes as n
from repro.core.parser import parse


# -- AST strategies ----------------------------------------------------------

attr_names = st.sampled_from(["A", "B", "C", "d", "val"])
relation_names = st.sampled_from(["R", "S", "T", "L"])


def exprs(var_pool):
    base = st.one_of(
        st.builds(n.Attr, st.sampled_from(var_pool), attr_names),
        st.builds(n.Const, st.integers(min_value=-9, max_value=9)),
        st.builds(n.Const, st.sampled_from(["x", "y"])),
    )
    return st.recursive(
        base,
        lambda inner: st.builds(
            n.Arith, st.sampled_from(["+", "-", "*"]), inner, inner
        ),
        max_leaves=4,
    )


def comparisons(var_pool, head=None):
    ops = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
    plain = st.builds(n.Comparison, exprs(var_pool), ops, exprs(var_pool))
    if head is None:
        return plain
    assignment = st.builds(
        lambda attr, expr: n.Comparison(n.Attr(head.name, attr), "=", expr),
        st.sampled_from(list(head.attrs)),
        exprs(var_pool),
    )
    return st.one_of(plain, assignment)


@st.composite
def quantifiers(draw, depth=0, outer_vars=(), head=None):
    n_bindings = draw(st.integers(min_value=1, max_value=3))
    offset = len(outer_vars)
    bindings = []
    var_pool = list(outer_vars)
    for index in range(n_bindings):
        var = f"v{offset + index}"
        if depth < 1 and draw(st.booleans()) and draw(st.booleans()):
            source = draw(collections(depth=depth + 1, outer_vars=tuple(var_pool)))
        else:
            source = n.RelationRef(draw(relation_names))
        bindings.append(n.Binding(var, source))
        var_pool.append(var)
    n_predicates = draw(st.integers(min_value=1, max_value=3))
    conjuncts = [
        draw(comparisons(var_pool, head)) for _ in range(n_predicates)
    ]
    if draw(st.booleans()) and depth < 2:
        inner = draw(
            quantifiers(depth=depth + 1, outer_vars=tuple(var_pool), head=None)
        )
        conjuncts.append(n.Not(inner) if draw(st.booleans()) else inner)
    grouping = None
    if draw(st.booleans()) and draw(st.booleans()):
        keys = tuple(
            n.Attr(b.var, draw(attr_names))
            for b in bindings
            if isinstance(b.source, n.RelationRef)
        )
        grouping = n.Grouping(keys)
    body = n.make_and(conjuncts)
    return n.Quantifier(bindings, body, grouping)


@st.composite
def collections(draw, depth=0, outer_vars=()):
    n_attrs = draw(st.integers(min_value=1, max_value=3))
    head = n.Head(f"H{depth}", tuple(f"a{i}" for i in range(n_attrs)))
    quant = draw(quantifiers(depth=depth, outer_vars=outer_vars, head=head))
    # Guarantee each head attribute is assigned at least once so that the
    # tree is also validator-friendly (not required for round-trips).
    conjuncts = n.conjuncts(quant.body)
    for attr in head.attrs:
        conjuncts.append(
            n.Comparison(
                n.Attr(head.name, attr),
                "=",
                n.Attr(quant.bindings[0].var, "A"),
            )
        )
    rebuilt = n.Quantifier(quant.bindings, n.make_and(conjuncts), quant.grouping)
    return n.Collection(head, rebuilt)


@settings(max_examples=40, deadline=None)
@given(collections())
def test_unicode_roundtrip(coll):
    text = render(coll)
    reparsed = parse(text)
    assert n.structurally_equal(coll, reparsed), text


@settings(max_examples=40, deadline=None)
@given(collections())
def test_ascii_roundtrip(coll):
    text = render_ascii(coll)
    reparsed = parse(text)
    assert n.structurally_equal(coll, reparsed), text


@settings(max_examples=25, deadline=None)
@given(collections())
def test_render_is_stable(coll):
    once = render(coll)
    twice = render(parse(once))
    assert once == twice


@settings(max_examples=20, deadline=None)
@given(collections())
def test_clone_preserves_structure(coll):
    assert n.structurally_equal(coll, n.clone(coll))


@settings(max_examples=20, deadline=None)
@given(collections())
def test_transform_identity(coll):
    assert n.structurally_equal(coll, n.transform(coll, lambda x: x))
