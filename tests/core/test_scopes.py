"""The generic scope analyses in ``repro.core.scopes``.

These moved out of ``backends/sql_render.py`` (ROADMAP decorrelation
follow-on (e)): the engine's decorrelation pass needs them, and the engine
must not depend on a rendering backend.  The renderer re-exports them for
compatibility.
"""

import subprocess
import sys

from repro.core.parser import parse
from repro.core.scopes import (
    free_variables,
    scalar_subquery_shape,
    shadows_binding,
    split_scope,
)


def _inner_binding(text):
    """The (scope, first-nested-collection-binding) of a parsed collection."""
    coll = parse(text)
    scope = coll.body
    for binding in scope.bindings:
        if type(binding.source).__name__ == "Collection":
            return scope, binding
    raise AssertionError("no nested collection binding")


class TestFreeVariables:
    def test_correlated_inner_collection(self):
        _, binding = _inner_binding(
            "{Q(A, sm) | ∃r ∈ R, t ∈ {T(s) | ∃s ∈ S, γ ∅["
            "T.s = sum(s.B) ∧ s.A = r.A]}[Q.A = r.A ∧ Q.sm = t.s]}"
        )
        assert free_variables(binding.source) == {"r"}

    def test_uncorrelated_inner_collection(self):
        _, binding = _inner_binding(
            "{Q(A, s) | ∃r ∈ R, t ∈ {T(s) | ∃s ∈ S, γ ∅[T.s = sum(s.B)]}"
            "[Q.A = r.A ∧ Q.s = t.s]}"
        )
        assert free_variables(binding.source) == set()

    def test_whole_collection_is_closed(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        assert free_variables(coll) == set()


class TestSplitScope:
    def test_four_way_classification(self):
        coll = parse(
            "{Q(A, sm) | ∃r ∈ R, γ r.A["
            "Q.A = r.A ∧ Q.sm = sum(r.B) ∧ r.B > 1 ∧ count(*) > 2]}"
        )
        assignments, agg_assignments, agg_comparisons, row_formulas = split_scope(
            coll.head, coll.body
        )
        assert [attr for attr, _ in assignments] == ["A"]
        assert [attr for attr, _ in agg_assignments] == ["sm"]
        assert len(agg_comparisons) == 1
        assert len(row_formulas) == 1

    def test_matches_renderer_reexport(self):
        from repro.backends import sql_render

        assert sql_render.split_scope is split_scope
        assert sql_render.free_variables is free_variables
        assert sql_render.scalar_subquery_shape is scalar_subquery_shape
        assert sql_render.shadows_binding is shadows_binding


class TestScalarSubqueryShape:
    def test_aggregate_only_gamma_empty_scope_qualifies(self):
        _, binding = _inner_binding(
            "{Q(A, sm) | ∃r ∈ R, t ∈ {T(s) | ∃s ∈ S, γ ∅["
            "T.s = sum(s.B) ∧ s.A = r.A]}[Q.A = r.A ∧ Q.sm = t.s]}"
        )
        assert scalar_subquery_shape(binding.source) is None

    def test_grouped_scope_is_rejected(self):
        _, binding = _inner_binding(
            "{Q(A, sm) | ∃r ∈ R, t ∈ {T(K, s) | ∃s ∈ S, γ s.A["
            "T.K = s.A ∧ T.s = sum(s.B)]}[Q.A = t.K ∧ Q.sm = t.s]}"
        )
        assert "γ∅" in scalar_subquery_shape(binding.source)


class TestShadowsBinding:
    def test_no_shadowing(self):
        scope, binding = _inner_binding(
            "{Q(A, sm) | ∃r ∈ R, t ∈ {T(s) | ∃s ∈ S, γ ∅["
            "T.s = sum(s.B) ∧ s.A = r.A]}[Q.A = r.A ∧ Q.sm = t.s]}"
        )
        assert not shadows_binding(scope, binding)


def test_engine_import_does_not_pull_in_the_renderer():
    """The decorrelation pass uses core.scopes directly now; importing the
    engine must not import the SQL rendering backend (follow-on (e))."""
    import os

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    code = (
        "import sys; import repro.engine.decorrelate; "
        "sys.exit(1 if 'repro.backends.sql_render' in sys.modules else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env={**os.environ, "PYTHONPATH": src},
        capture_output=True,
    )
    assert result.returncode == 0, result.stderr.decode()
