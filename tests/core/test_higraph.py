"""Tests for the diagrammatic higraph modality."""

from repro.core.higraph import build_higraph, render_ascii, render_svg
from repro.core.parser import parse
from repro.data import Database


def regions_by_kind(higraph):
    kinds = {}
    for region in higraph.all_regions():
        kinds.setdefault(region.kind, []).append(region)
    return kinds


class TestStructure:
    def test_basic_regions(self):
        h = build_higraph(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        kinds = regions_by_kind(h)
        assert len(kinds["canvas"]) == 1
        assert len(kinds["collection"]) == 1
        assert len(kinds["quantifier"]) == 1

    def test_negation_region(self):
        h = build_higraph(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        )
        assert "negation" in regions_by_kind(h)

    def test_grouping_scope_double_border(self):
        h = build_higraph(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        quantifier = regions_by_kind(h)["quantifier"][0]
        assert quantifier.double_border
        table = quantifier.tables[0]
        assert "A" in table.grouped_attrs

    def test_edge_kinds(self):
        h = build_higraph(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        kinds = {e.kind for e in h.edges}
        assert "assignment" in kinds
        assert "aggregation" in kinds

    def test_selection_constant_becomes_literal(self):
        h = build_higraph(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.C = 0]}"))
        literals = [l for region in h.all_regions() for l in region.literals]
        assert any("0" in l.text for l in literals)

    def test_optional_side_marker(self):
        h = build_higraph(
            parse(
                "{Q(m, n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s))"
                "[Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}"
            )
        )
        tables = {t.var: t for t in h.all_tables()}
        assert tables["s"].optional and not tables["r"].optional

    def test_full_join_both_optional(self):
        h = build_higraph(
            parse("{Q(a) | ∃r ∈ R, s ∈ S, full(r, s)[Q.a = r.A ∧ r.B = s.B]}")
        )
        tables = {t.var: t for t in h.all_tables()}
        assert tables["r"].optional and tables["s"].optional

    def test_schema_from_database(self):
        db = Database()
        db.create("R", ("A", "B", "C"))
        h = build_higraph(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"), database=db)
        table = next(iter(h.all_tables()))
        assert table.attrs == ("A", "B", "C")

    def test_nested_collection_region(self):
        h = build_higraph(
            parse(
                "{Q(sm) | ∃x ∈ {X(sm) | ∃s ∈ S, γ ∅[X.sm = sum(s.B)]}"
                "[Q.sm = x.sm]}"
            )
        )
        assert len(regions_by_kind(h)["collection"]) == 2

    def test_disjunct_regions(self):
        h = build_higraph(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A] ∨ ∃s ∈ S[Q.A = s.A]}")
        )
        assert len(regions_by_kind(h)["disjunct"]) == 2


class TestRenderers:
    def test_ascii_contains_tables_and_edges(self):
        h = build_higraph(parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"))
        text = render_ascii(h)
        assert "r: R" in text and "s: S" in text
        assert "edges:" in text
        assert "◄──" in text  # assignment arrow

    def test_ascii_double_border_marker(self):
        h = build_higraph(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        assert "══" in render_ascii(h)

    def test_ascii_deterministic(self):
        query = "{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"
        a = render_ascii(build_higraph(parse(query)))
        b = render_ascii(build_higraph(parse(query)))
        assert a == b

    def test_svg_well_formed(self):
        h = build_higraph(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        svg = render_svg(h)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") >= 3

    def test_svg_escapes_labels(self):
        h = build_higraph(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B < 3]}"))
        svg = render_svg(h)
        assert "&lt;" in svg or "<text" in svg


class TestPrograms:
    def test_program_diagrams_definitions_and_main(self):
        from repro.core.parser import parse

        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n{Q(A) | ∃v ∈ V[Q.A = v.A]}"
        )
        h = build_higraph(program)
        kinds = regions_by_kind(h)
        assert len(kinds["collection"]) == 2  # the view and the main query

    def test_program_with_abstract_module(self):
        from repro.core.parser import parse

        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L, s1 ∈ Sub[Q.d = l1.d ∧ s1.l = l1.d ∧ s1.r = l1.d]}"
        )
        h = build_higraph(program)
        text = render_ascii(h)
        assert "Sub" in text
