"""Tests for the comprehension-syntax parser."""

import pytest

from repro.core import nodes as n
from repro.core.parser import parse, parse_collection, parse_program, parse_sentence
from repro.errors import ParseError


class TestCollections:
    def test_simple(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        assert isinstance(coll, n.Collection)
        assert coll.head.name == "Q"
        assert coll.head.attrs == ("A",)
        assert isinstance(coll.body, n.Quantifier)

    def test_shared_quantifier(self):
        coll = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A]}")
        assert [b.var for b in coll.body.bindings] == ["r", "s"]

    def test_ascii_spelling(self):
        a = parse("{Q(A) | exists r in R[Q.A = r.A and r.B = 0]}")
        b = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 0]}")
        assert n.structurally_equal(a, b)

    def test_empty_head(self):
        coll = parse("{Q() | ∃r ∈ R[r.A = 1]}")
        assert coll.head.attrs == ()

    def test_nested_collection_binding(self):
        coll = parse("{Q(B) | ∃z ∈ {Z(B) | ∃y ∈ Y[Z.B = y.A]}[Q.B = z.B]}")
        binding = coll.body.bindings[0]
        assert isinstance(binding.source, n.Collection)
        assert binding.source.head.name == "Z"

    def test_disjunction_body(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A] ∨ ∃s ∈ S[Q.A = s.A]}")
        assert isinstance(coll.body, n.Or)
        assert len(coll.body.children_list) == 2

    def test_negation(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        conjuncts = n.conjuncts(coll.body.body)
        assert any(isinstance(c, n.Not) for c in conjuncts)

    def test_parenthesized_formula_vs_expression(self):
        coll = parse("{Q(A) | ∃r ∈ R[(r.A = 1 ∨ r.A = 2) ∧ Q.A = r.A]}")
        assert isinstance(coll.body.body, n.And)
        coll2 = parse("{Q(A) | ∃r ∈ R[(r.A + 1) * 2 = 4 ∧ Q.A = r.A]}")
        comparison = n.conjuncts(coll2.body.body)[0]
        assert isinstance(comparison.left, n.Arith)


class TestGrouping:
    def test_single_key(self):
        coll = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        grouping = coll.body.grouping
        assert grouping is not None
        assert len(grouping.keys) == 1

    def test_multiple_keys(self):
        coll = parse("{Q(A, B) | ∃r ∈ R, γ r.A, r.B[Q.A = r.A ∧ Q.B = r.B]}")
        assert len(coll.body.grouping.keys) == 2

    def test_empty_gamma(self):
        coll = parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}")
        assert coll.body.grouping.keys == ()

    def test_gamma_parens_form(self):
        coll = parse("{Q(sm) | exists r in R, gamma()[Q.sm = sum(r.B)]}")
        assert coll.body.grouping.keys == ()

    def test_keys_then_binding(self):
        coll = parse(
            "{Q(A) | ∃r ∈ R, γ r.A, s ∈ S[Q.A = r.A ∧ s.A = r.A]}"
        )
        assert len(coll.body.grouping.keys) == 1
        assert len(coll.body.bindings) == 2


class TestJoinAnnotations:
    def test_left_join(self):
        coll = parse("{Q(A) | ∃r ∈ R, s ∈ S, left(r, s)[Q.A = r.A]}")
        join = coll.body.join
        assert join.kind == "left"
        assert [c.var for c in join.children_list] == ["r", "s"]

    def test_literal_leaf(self):
        coll = parse("{Q(A) | ∃r ∈ R, s ∈ S, left(r, inner(11, s))[Q.A = r.A]}")
        inner_node = coll.body.join.children_list[1]
        assert isinstance(inner_node.children_list[0], n.JoinConst)
        assert inner_node.children_list[0].value == 11

    def test_binary_constraint(self):
        with pytest.raises(ValueError):
            n.Join("left", [n.JoinVar("a"), n.JoinVar("b"), n.JoinVar("c")])


class TestExpressions:
    def test_precedence(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A + r.B * 2]}")
        expr = coll.body.body.right if hasattr(coll.body.body, "right") else None
        assert isinstance(expr, n.Arith)
        assert expr.op == "+"
        assert isinstance(expr.right, n.Arith)

    def test_negative_literal(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = -5]}")
        comparison = n.conjuncts(coll.body.body)[1]
        assert comparison.right.value == -5

    def test_aggregates(self):
        coll = parse("{Q(c) | ∃r ∈ R, γ ∅[Q.c = count(*)]}")
        agg = coll.body.body.right
        assert isinstance(agg, n.AggCall)
        assert agg.arg is None

    def test_aggregate_with_arithmetic_arg(self):
        coll = parse("{Q(v) | ∃a ∈ A, γ ∅[Q.v = sum(a.x * a.y)]}")
        agg = coll.body.body.right
        assert isinstance(agg.arg, n.Arith)

    def test_is_null(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B is null]}")
        assert any(isinstance(c, n.IsNull) for c in n.conjuncts(coll.body.body))

    def test_is_not_null(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B is not null]}")
        isnull = n.conjuncts(coll.body.body)[1]
        assert isnull.negated

    def test_string_and_null_literals(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 'x' ∧ r.C = null]}")
        comparisons = n.conjuncts(coll.body.body)
        assert comparisons[1].right.value == "x"


class TestSentences:
    def test_exists_sentence(self):
        sentence = parse("∃r ∈ R[r.A = 1]")
        assert isinstance(sentence, n.Sentence)

    def test_negated_sentence(self):
        sentence = parse("¬∃r ∈ R[r.A = 1]")
        assert isinstance(sentence.body, n.Not)

    def test_parse_sentence_rejects_collection(self):
        with pytest.raises(ParseError):
            parse_sentence("{Q(A) | ∃r ∈ R[Q.A = r.A]}")

    def test_parse_collection_rejects_sentence(self):
        with pytest.raises(ParseError):
            parse_collection("∃r ∈ R[r.A = 1]")


class TestPrograms:
    def test_definitions_and_main(self):
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n{Q(A) | ∃v ∈ V[Q.A = v.A]}"
        )
        assert isinstance(program, n.Program)
        assert "V" in program.definitions
        assert isinstance(program.main, n.Collection)

    def test_main_by_name(self):
        program = parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        assert program.main == "V"
        assert program.resolve_main() is program.definitions["V"]

    def test_definitions_only_defaults_to_last(self):
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\nW := {W(A) | ∃v ∈ V[W.A = v.A]} ;"
        )
        assert program.main == "W"

    def test_parse_program_wraps_collection(self):
        program = parse_program("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        assert isinstance(program, n.Program)
        assert not program.definitions


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "{Q(A) | ∃r ∈ R[Q.A = r.A]",  # missing brace
            "{Q(A) ∃r ∈ R[Q.A = r.A]}",  # missing |
            "{Q(A) | ∃r ∈ R[Q.A =]}",  # missing rhs
            "{Q(A) | ∃[Q.A = 1]}",  # missing binding
            "{Q(A) | ∃r ∈ R[Q.A = r.A]} trailing",
            "{Q(A) | r.A = 1 =}",
        ],
    )
    def test_parse_errors(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        try:
            parse("{Q(A) | ∃r ∈ R[Q.A @ r.A]}")
        except ParseError as exc:
            assert exc.line == 1
        else:  # pragma: no cover
            pytest.fail("expected ParseError")
