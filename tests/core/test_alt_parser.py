"""The ALT modality is lossless: parse_alt(render_alt(q)) ≡ q."""

import pytest
from hypothesis import given, settings

from repro.core import nodes as n
from repro.core.alt import render_alt
from repro.core.alt_parser import parse_alt
from repro.core.parser import parse
from repro.errors import ParseError
from repro.workloads import paper_examples

from .test_roundtrip import collections


class TestPaperExamples:
    @pytest.mark.parametrize("key", paper_examples.all_arc_keys())
    def test_every_paper_query_roundtrips(self, key):
        query = paper_examples.arc(key)
        reparsed = parse_alt(render_alt(query))
        assert n.structurally_equal(query, reparsed), key

    def test_fig2a_text_parses(self):
        text = "\n".join(
            [
                "COLLECTION",
                "├─ HEAD: Q(A)",
                "└─ QUANTIFIER ∃",
                "   ├─ BINDING: r ∈ R",
                "   ├─ BINDING: s ∈ S",
                "   └─ AND ∧",
                "      ├─ PREDICATE: Q.A = r.A",
                "      ├─ PREDICATE: r.B = s.B",
                "      └─ PREDICATE: s.C = 0",
            ]
        )
        query = parse_alt(text)
        expected = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
        assert n.structurally_equal(query, expected)

    def test_links_section_ignored(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        text = render_alt(query, include_links=True)
        assert n.structurally_equal(parse_alt(text), query)

    def test_grouping_and_join_lines(self):
        query = parse(
            "{X(id, ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s)"
            "[X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]}"
        )
        assert n.structurally_equal(parse_alt(render_alt(query)), query)

    def test_sentence_roundtrip(self):
        sentence = parse("¬∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q > count(s.d)]]")
        assert n.structurally_equal(parse_alt(render_alt(sentence)), sentence)

    def test_program_roundtrip(self):
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n{Q(A) | ∃v ∈ V[Q.A = v.A]}"
        )
        reparsed = parse_alt(render_alt(program))
        assert isinstance(reparsed, n.Program)
        assert n.structurally_equal(program, reparsed)


class TestErrors:
    def test_empty(self):
        with pytest.raises(ParseError):
            parse_alt("")

    def test_orphan_line(self):
        with pytest.raises(ParseError):
            parse_alt("COLLECTION\n         └─ PREDICATE: a.b = 1")

    def test_non_branch_line(self):
        with pytest.raises(ParseError):
            parse_alt("COLLECTION\nnot a branch")

    def test_missing_head(self):
        with pytest.raises(ParseError):
            parse_alt("COLLECTION\n├─ PREDICATE: a.b = 1\n└─ AND ∧")


class TestProperty:
    @settings(max_examples=40, deadline=None)
    @given(collections())
    def test_random_trees_roundtrip(self, coll):
        text = render_alt(coll)
        reparsed = parse_alt(text)
        assert n.structurally_equal(coll, reparsed), text
