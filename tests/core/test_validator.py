"""Tests for ARC's semantic validation rules."""

import pytest

from repro.core.parser import parse
from repro.core.validator import dependency_graph, validate
from repro.data import Database
from repro.engine import standard_registry
from repro.errors import ValidationError


def codes(report):
    return {issue.code for issue in report.errors()}


class TestHeads:
    def test_valid_query(self):
        report = validate(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        assert report.ok and not report.is_abstract

    def test_unassigned_head_attr(self):
        report = validate(parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A]}"))
        assert "head-unassigned" in codes(report)

    def test_or_branch_must_assign_all(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A] ∨ ∃s ∈ S[s.A = 1]}")
        )
        assert "head-unassigned" in codes(report)

    def test_or_both_branches_assign(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A] ∨ ∃s ∈ S[Q.A = s.A]}")
        )
        assert report.ok

    def test_abstract_detected(self):
        sub = parse(
            "{S(l, r) | ¬(∃x ∈ L[x.d = S.l ∧ ¬(∃y ∈ L[y.b = x.b ∧ y.d = S.r])])}"
        )
        report = validate(sub)
        assert report.is_abstract and not report.ok
        allowed = validate(sub, allow_abstract=True)
        assert allowed.ok and allowed.is_abstract

    def test_raise_if_errors(self):
        report = validate(parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A]}"))
        with pytest.raises(ValidationError):
            report.raise_if_errors()


class TestGroupingRules:
    def test_aggregate_requires_grouping(self):
        report = validate(parse("{Q(sm) | ∃r ∈ R[Q.sm = sum(r.B)]}"))
        assert "grouping-required" in codes(report)

    def test_grouping_scope_accepted(self):
        report = validate(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        assert report.ok

    def test_empty_gamma_accepted(self):
        report = validate(parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}"))
        assert report.ok

    def test_grouping_without_aggregate_is_dedup(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ R, γ r.A[Q.A = r.A]}")
        )
        assert report.ok

    def test_nested_aggregate_rejected(self):
        report = validate(
            parse("{Q(x) | ∃r ∈ R, γ ∅[Q.x = sum(count(r.B) + 1)]}")
        )
        assert "nested-aggregate" in codes(report)

    def test_grouping_key_must_be_bound(self):
        report = validate(
            parse("{Q(A, sm) | ∃r ∈ R, γ z.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        assert not report.ok

    def test_aggregate_in_inner_scope_owned_there(self):
        # The aggregate belongs to the inner γ∅ scope, not the outer one.
        report = validate(
            parse(
                "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ "
                "∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
            )
        )
        assert report.ok


class TestJoins:
    def test_join_var_must_be_bound(self):
        report = validate(parse("{Q(A) | ∃r ∈ R, left(r, s)[Q.A = r.A]}"))
        assert not report.ok

    def test_duplicate_join_var(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ R, s ∈ S, inner(r, r, s)[Q.A = r.A]}")
        )
        assert "join-duplicate" in codes(report)

    def test_partial_annotation_warns(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, left(r, s)[Q.A = r.A]}")
        )
        assert report.ok
        assert any(i.code == "join-partial" for i in report.warnings())


class TestRelationClassification:
    def test_kinds(self):
        db = Database()
        db.create("R", ("A", "B"))
        program = parse(
            "V := {V(A) | ∃r ∈ R[V.A = r.A]} ;\n"
            "{Q(A) | ∃v ∈ V, f ∈ Minus[Q.A = v.A ∧ f.left = v.A ∧ "
            "f.right = 0 ∧ f.out = 1]}"
        )
        report = validate(program, database=db, externals=standard_registry())
        assert report.relation_kinds["R"] == "base"
        assert report.relation_kinds["V"] == "defined"
        assert report.relation_kinds["Minus"] == "external"

    def test_unknown_relation_with_database(self):
        report = validate(
            parse("{Q(A) | ∃r ∈ Missing[Q.A = r.A]}"), database=Database()
        )
        assert "unknown-relation" in codes(report)

    def test_self_reference(self):
        query = parse(
            "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p2 ∈ P, a2 ∈ A[A.s = p2.s ∧ p2.t = a2.s ∧ A.t = a2.t]}"
        )
        report = validate(query)
        assert report.relation_kinds["A"] == "self"


class TestStratification:
    def test_monotone_recursion_ok(self):
        program = parse(
            "A := {A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]} ; main A"
        )
        assert validate(program).ok

    def test_negative_recursion_rejected(self):
        program = parse(
            "B := {B(x) | ∃p ∈ P[B.x = p.s ∧ ¬(∃b ∈ B[b.x = p.t])]} ; main B"
        )
        assert "stratification" in codes(validate(program))

    def test_mutual_negative_recursion_rejected(self):
        program = parse(
            "A := {A(x) | ∃p ∈ P[A.x = p.s ∧ ¬(∃b ∈ B[b.x = p.s])]} ;\n"
            "B := {B(x) | ∃p ∈ P, a ∈ A[B.x = p.s ∧ a.x = p.s]} ; main B"
        )
        assert "stratification" in codes(validate(program))

    def test_negation_of_lower_stratum_ok(self):
        program = parse(
            "V := {V(x) | ∃p ∈ P[V.x = p.s]} ;\n"
            "W := {W(x) | ∃p ∈ P[W.x = p.t ∧ ¬(∃v ∈ V[v.x = p.t])]} ; main W"
        )
        assert validate(program).ok

    def test_dependency_graph(self):
        program = parse(
            "V := {V(x) | ∃p ∈ P[V.x = p.s]} ;\n"
            "W := {W(x) | ∃v ∈ V[W.x = v.x]} ; main W"
        )
        graph = dependency_graph(program)
        assert ("P", True) in graph["V"]
        assert ("V", True) in graph["W"]
