"""Tests for the Conventions record and its presets."""

from repro.core.conventions import (
    Conventions,
    EmptyAggregate,
    NullComparison,
    Semantics,
    SET_CONVENTIONS,
    SOUFFLE_CONVENTIONS,
    SQL_CONVENTIONS,
)


class TestPresets:
    def test_sql(self):
        assert SQL_CONVENTIONS.is_bag
        assert SQL_CONVENTIONS.empty_aggregate is EmptyAggregate.NULL
        assert SQL_CONVENTIONS.three_valued

    def test_souffle(self):
        assert SOUFFLE_CONVENTIONS.is_set
        assert SOUFFLE_CONVENTIONS.empty_aggregate is EmptyAggregate.ZERO
        assert not SOUFFLE_CONVENTIONS.three_valued

    def test_set_default(self):
        assert SET_CONVENTIONS.is_set
        assert Conventions() == SET_CONVENTIONS


class TestSwitching:
    def test_with_flips_one_switch(self):
        flipped = SET_CONVENTIONS.with_(semantics=Semantics.BAG)
        assert flipped.is_bag
        assert flipped.empty_aggregate is SET_CONVENTIONS.empty_aggregate

    def test_immutability(self):
        import dataclasses
        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            SET_CONVENTIONS.semantics = Semantics.BAG

    def test_describe(self):
        text = SQL_CONVENTIONS.describe()
        assert "bag" in text and "null" in text and "3vl" in text

    def test_equality_and_hash(self):
        assert SET_CONVENTIONS == Conventions()
        assert hash(SET_CONVENTIONS) == hash(Conventions())
        assert SET_CONVENTIONS != SQL_CONVENTIONS
