"""Tests for the programmatic AST builder helpers."""

import pytest

from repro.backends.comprehension import render
from repro.core import builder as b
from repro.core import nodes as n
from repro.core.parser import parse


class TestBuilder:
    def test_matches_parsed_query(self):
        built = b.collection(
            "Q",
            ["A"],
            b.exists(
                [b.bind("r", "R"), b.bind("s", "S")],
                b.conj(
                    b.eq(b.attr("Q.A"), b.attr("r.A")),
                    b.eq(b.attr("r.B"), b.attr("s.B")),
                    b.eq(b.attr("s.C"), b.const(0)),
                ),
            ),
        )
        parsed = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
        assert n.structurally_equal(built, parsed)

    def test_string_coercion(self):
        predicate = b.eq("r.A", 5)
        assert isinstance(predicate.left, n.Attr)
        assert isinstance(predicate.right, n.Const)

    def test_attr_requires_dot(self):
        with pytest.raises(ValueError):
            b.attr("nodot")

    def test_comparison_helpers(self):
        assert b.lt("r.A", "s.B").op == "<"
        assert b.lte("r.A", 1).op == "<="
        assert b.gt("r.A", 1).op == ">"
        assert b.gte("r.A", 1).op == ">="
        assert b.neq("r.A", 1).op == "<>"

    def test_aggregate_helpers(self):
        assert b.sum_("r.B").func == "sum"
        assert b.count().arg is None
        assert b.avg("r.B").func == "avg"
        assert b.min_("r.B").func == "min"
        assert b.max_("r.B").func == "max"

    def test_grouping_empty_and_keys(self):
        assert b.grouping().keys == ()
        grouping = b.grouping("r.A", "r.B")
        assert len(grouping.keys) == 2

    def test_join_builders(self):
        join = b.left("r", b.inner(11, "s"))
        assert join.kind == "left"
        assert isinstance(join.children_list[1].children_list[0], n.JoinConst)

    def test_program_builder(self):
        program = b.program({"V": b.collection("V", ["A"], b.exists([b.bind("r", "R")], b.eq("V.A", "r.A")))}, "V")
        assert program.resolve_main().head.name == "V"

    def test_rendered_builder_output_parses(self):
        built = b.collection(
            "Q",
            ["A", "sm"],
            b.exists(
                [b.bind("r", "R")],
                b.conj(
                    b.eq("Q.A", "r.A"),
                    n.Comparison(b.attr("Q.sm"), "=", b.sum_("r.B")),
                ),
                grouping=b.grouping("r.A"),
            ),
        )
        assert n.structurally_equal(parse(render(built)), built)


class TestNodeInvariants:
    def test_unknown_comparison_op(self):
        with pytest.raises(ValueError):
            n.Comparison(n.Const(1), "~", n.Const(2))

    def test_unknown_arith_op(self):
        with pytest.raises(ValueError):
            n.Arith("^", n.Const(1), n.Const(2))

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            n.AggCall("median", n.Const(1))

    def test_aggregate_requires_arg(self):
        with pytest.raises(ValueError):
            n.AggCall("sum", None)

    def test_make_and_collapses(self):
        assert isinstance(n.make_and([]), n.BoolConst)
        single = n.Comparison(n.Const(1), "=", n.Const(1))
        assert n.make_and([single]) is single
        nested = n.make_and([n.And([single]), n.BoolConst(True)])
        assert nested is single

    def test_make_or_collapses(self):
        assert isinstance(n.make_or([]), n.BoolConst)
        single = n.Comparison(n.Const(1), "=", n.Const(1))
        assert n.make_or([single]) is single

    def test_conjuncts_flattening(self):
        a = n.Comparison(n.Const(1), "=", n.Const(1))
        b_ = n.Comparison(n.Const(2), "=", n.Const(2))
        c = n.Comparison(n.Const(3), "=", n.Const(3))
        nested = n.And([a, n.And([b_, c])])
        assert n.conjuncts(nested) == [a, b_, c]

    def test_walk_preorder(self):
        coll = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        nodes = list(coll.walk())
        assert nodes[0] is coll

    def test_vars_used(self):
        coll = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        assert n.vars_used(coll) == {"Q", "r", "s"}

    def test_structural_equality_ignores_identity(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b_ = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        assert a is not b_
        assert n.structurally_equal(a, b_)

    def test_structural_inequality(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b_ = parse("{Q(A) | ∃r ∈ S[Q.A = r.A]}")
        assert not n.structurally_equal(a, b_)
