"""Tests for the ALT modality rendering (the paper's box-drawing style)."""

from repro.core.alt import render_alt
from repro.core.parser import parse


class TestFigures:
    def test_fig2a_exact(self):
        """The linked ALT of eq. (1) matches Fig. 2a line by line."""
        query = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
        expected = "\n".join(
            [
                "COLLECTION",
                "├─ HEAD: Q(A)",
                "└─ QUANTIFIER ∃",
                "   ├─ BINDING: r ∈ R",
                "   ├─ BINDING: s ∈ S",
                "   └─ AND ∧",
                "      ├─ PREDICATE: Q.A = r.A",
                "      ├─ PREDICATE: r.B = s.B",
                "      └─ PREDICATE: s.C = 0",
            ]
        )
        assert render_alt(query) == expected

    def test_fig4b_grouping_line(self):
        query = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        text = render_alt(query)
        assert "├─ GROUPING: r.A" in text
        assert "└─ PREDICATE: Q.sm = sum(r.B)" in text

    def test_fig5c_nested_collection(self):
        query = parse(
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅"
            "[r2.A = r.A ∧ X.sm = sum(r2.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        text = render_alt(query)
        assert "BINDING: x ∈ " in text
        assert "GROUPING: ∅" in text
        assert text.count("COLLECTION") == 2

    def test_fig21i_join_line(self):
        query = parse(
            "{X(id, ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s)"
            "[X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]}"
        )
        text = render_alt(query)
        assert "├─ JOIN: left(r2, s)" in text
        assert "├─ GROUPING: r2.id" in text

    def test_recursion_fig10(self):
        query = parse(
            "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p ∈ P, a2 ∈ A[A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}"
        )
        text = render_alt(query)
        assert "OR ∨" in text
        assert text.count("QUANTIFIER ∃") == 2


class TestLinks:
    def test_links_section(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        text = render_alt(query, include_links=True)
        assert "LINKS:" in text
        assert "Q.A -> head Q" in text
        assert "r.A -> binding r" in text

    def test_unlinkable_query_degrades(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = z.A]}")
        text = render_alt(query, include_links=True)
        assert "unlinkable" in text


class TestShapes:
    def test_sentence(self):
        text = render_alt(parse("¬∃r ∈ R[r.A = 1]"))
        assert text.startswith("SENTENCE")
        assert "NOT ¬" in text

    def test_program(self):
        text = render_alt(
            parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        )
        assert text.startswith("PROGRAM")
        assert "DEFINE: V" in text
        assert "MAIN: V" in text

    def test_is_null_predicate(self):
        text = render_alt(parse("∃r ∈ R[r.A is null]"))
        assert "PREDICATE: r.A is null" in text

    def test_count_star(self):
        text = render_alt(parse("{Q(c) | ∃r ∈ R, γ ∅[Q.c = count(*)]}"))
        assert "count(*)" in text
