"""Tests for pattern-level rewrites and their applicability conditions."""

import pytest

from repro.core import rewrites
from repro.core.conventions import (
    Conventions,
    NullComparison,
    SET_CONVENTIONS,
    Semantics,
)
from repro.core.parser import parse
from repro.data import Database, NULL
from repro.engine import evaluate
from repro.errors import RewriteError
from repro.workloads import instances

BAG = Conventions(semantics=Semantics.BAG)
TWO_VL = SET_CONVENTIONS.with_(null_comparison=NullComparison.TWO_VALUED)


class TestUnnest:
    def test_unnest_merges_scopes(self):
        nested = parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}")
        flat = rewrites.unnest(nested)
        assert len(flat.body.bindings) == 2

    def test_equivalent_under_set(self, rs_db):
        nested = parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}")
        flat = rewrites.unnest(nested)
        assert evaluate(nested, rs_db).set_equal(evaluate(flat, rs_db))

    def test_refused_under_bag(self):
        nested = parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}")
        with pytest.raises(RewriteError):
            rewrites.unnest(nested, BAG)

    def test_bag_difference_is_real(self):
        """The refusal is justified: multiplicities actually differ."""
        db = Database()
        db.create("R", ("A", "B"), [(1, 5)])
        db.create("S", ("B",), [(5,), (5,)])
        nested = parse("{Q(A) | ∃r ∈ R[∃s ∈ S[Q.A = r.A ∧ r.B = s.B]]}")
        flat = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        assert len(evaluate(nested, db, BAG)) == 1
        assert len(evaluate(flat, db, BAG)) == 2

    def test_grouping_scope_not_merged(self):
        query = parse(
            "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ ∃s ∈ S, γ ∅"
            "[r.id = s.id ∧ r.q = count(s.d)]]}"
        )
        result = rewrites.unnest(query)
        # γ∅ scope must survive: it is not a plain existential.
        assert "γ" in __import__("repro.backends.comprehension", fromlist=["render"]).render(result)


class TestNestExistential:
    def test_roundtrip_with_unnest(self, rs_db):
        flat = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        nested = rewrites.nest_existential(flat, ["s"])
        assert evaluate(flat, rs_db).set_equal(evaluate(nested, rs_db))
        back = rewrites.unnest(nested)
        assert len(back.body.bindings) == 2

    def test_unknown_variable(self):
        flat = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        with pytest.raises(RewriteError):
            rewrites.nest_existential(flat, ["zz"])


class TestNotInRewrite:
    def test_adds_null_checks(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        rewritten = rewrites.not_in_to_not_exists(query)
        from repro.backends.comprehension import render

        text = render(rewritten)
        assert "is null" in text

    def test_2vl_equivalence_with_nulls(self):
        db = instances.not_in_instance(with_null=True)
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        rewritten = rewrites.not_in_to_not_exists(query)
        assert evaluate(query, db, SET_CONVENTIONS).set_equal(
            evaluate(rewritten, db, TWO_VL)
        )

    def test_2vl_equivalence_without_nulls(self):
        db = instances.not_in_instance(with_null=False)
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        rewritten = rewrites.not_in_to_not_exists(query)
        assert evaluate(query, db, SET_CONVENTIONS).set_equal(
            evaluate(rewritten, db, TWO_VL)
        )


class TestDistinctAsGrouping:
    def test_adds_grouping(self):
        query = parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}")
        rewritten = rewrites.distinct_as_grouping(query)
        assert rewritten.body.grouping is not None
        assert len(rewritten.body.grouping.keys) == 2

    def test_dedupes_under_bag(self):
        db = Database()
        db.create("R", ("A", "B"), [(1, 2), (1, 2), (3, 4)])
        query = parse("{Q(A, B) | ∃r ∈ R[Q.A = r.A ∧ Q.B = r.B]}")
        rewritten = rewrites.distinct_as_grouping(query)
        assert len(evaluate(query, db, BAG)) == 3
        assert len(evaluate(rewritten, db, BAG)) == 2

    def test_requires_plain_assignments(self):
        query = parse("{Q(sm) | ∃r ∈ R, γ ∅[Q.sm = sum(r.B)]}")
        # Already grouped: returned unchanged.
        assert rewrites.distinct_as_grouping(query) is query


class TestCountBugRewrites:
    def test_naive_rewrite_exhibits_bug(self, count_bug_db):
        v1 = parse(
            "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ "
            "∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
        )
        v2 = rewrites.decorrelate_scalar_naive(v1)
        assert [t["id"] for t in evaluate(v1, count_bug_db)] == [9]
        assert evaluate(v2, count_bug_db).is_empty()

    def test_correct_rewrite_preserves(self, count_bug_db):
        v1 = parse(
            "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ "
            "∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
        )
        v3 = rewrites.decorrelate_scalar(v1)
        assert evaluate(v1, count_bug_db).set_equal(evaluate(v3, count_bug_db))

    def test_all_versions_agree_on_populated_instance(self):
        db = instances.count_bug_populated()
        v1 = parse(
            "{Q(id) | ∃r ∈ R[Q.id = r.id ∧ "
            "∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]}"
        )
        v2 = rewrites.decorrelate_scalar_naive(v1)
        v3 = rewrites.decorrelate_scalar(v1)
        r1, r3 = evaluate(v1, db), evaluate(v3, db)
        assert r1.set_equal(r3)
        # v2 may differ exactly on ids with empty S-groups and q = 0.
        r2 = evaluate(v2, db)
        missing = set(r1.iter_distinct()) - set(r2.iter_distinct())
        for tup in missing:
            matching = [s for s in db["S"] if s["id"] == tup["id"]]
            assert not matching

    def test_shape_mismatch_raises(self):
        plain = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        with pytest.raises(RewriteError):
            rewrites.decorrelate_scalar(plain)


class TestInlineAbstract:
    def test_inline_equivalence(self, likes_db):
        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ ¬(∃l2 ∈ L, s1 ∈ Sub, s2 ∈ Sub"
            "[l2.d <> l1.d ∧ s1.l = l1.d ∧ s1.r = l2.d ∧ "
            "s2.l = l2.d ∧ s2.r = l1.d])]}"
        )
        inlined = rewrites.inline_abstract(program)
        assert not inlined.definitions  # Sub is gone
        assert evaluate(program, likes_db).set_equal(evaluate(inlined, likes_db))

    def test_inline_matches_monolithic_pattern(self, likes_db):
        from repro.analysis import same_pattern

        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ ¬(∃l2 ∈ L, s1 ∈ Sub, s2 ∈ Sub"
            "[l2.d <> l1.d ∧ s1.l = l1.d ∧ s1.r = l2.d ∧ "
            "s2.l = l2.d ∧ s2.r = l1.d])]}"
        )
        inlined = rewrites.inline_abstract(program).resolve_main()
        monolithic = parse(
            "{Q(d) | ∃l1 ∈ L[Q.d = l1.d ∧ "
            "¬(∃l2 ∈ L[l2.d <> l1.d ∧ "
            "¬(∃l3 ∈ L[l3.d = l2.d ∧ ¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = l1.d])]) ∧ "
            "¬(∃l5 ∈ L[l5.d = l1.d ∧ ¬(∃l6 ∈ L[l6.d = l2.d ∧ l6.b = l5.b])])])]}"
        )
        assert evaluate(inlined, likes_db).set_equal(evaluate(monolithic, likes_db))

    def test_no_abstract_definitions_is_identity(self):
        program = parse("V := {V(A) | ∃r ∈ R[V.A = r.A]} ; main V")
        assert rewrites.inline_abstract(program) is program

    def test_underdetermined_attributes_raise(self):
        program = parse(
            "Sub := {Sub(l, r) | ¬(∃l3 ∈ L[l3.d = Sub.l ∧ "
            "¬(∃l4 ∈ L[l4.b = l3.b ∧ l4.d = Sub.r])])} ;\n"
            "{Q(d) | ∃l1 ∈ L, s1 ∈ Sub[Q.d = l1.d ∧ s1.l = l1.d]}"
        )
        with pytest.raises(RewriteError):
            rewrites.inline_abstract(program)
