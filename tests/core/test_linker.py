"""Tests for name resolution and predicate classification (the linked ALT)."""

import pytest

from repro.core import nodes as n
from repro.core.linker import ASSIGNMENT, COMPARISON, link
from repro.core.parser import parse
from repro.errors import LinkError


def predicates_of(result):
    return {
        f"{_t(p.left)} {p.op} {_t(p.right)}": p
        for p in result.roles
        if isinstance(p, n.Comparison)
    }


def _t(expr):
    from repro.core.alt import _expr_text

    return _expr_text(expr)


class TestResolution:
    def test_attrs_resolve_to_bindings(self):
        result = link(parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}"))
        targets = {
            f"{a.var}.{a.attr}": d for a, d in result.resolutions.items()
        }
        assert isinstance(targets["r.A"], n.Binding)
        assert isinstance(targets["s.B"], n.Binding)
        assert isinstance(targets["Q.A"], n.Head)

    def test_unbound_variable(self):
        with pytest.raises(LinkError):
            link(parse("{Q(A) | ∃r ∈ R[Q.A = z.A]}"))

    def test_shadowing_rejected(self):
        with pytest.raises(LinkError):
            link(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃r ∈ S[r.B = 1]]}"))

    def test_duplicate_binding_in_scope(self):
        with pytest.raises(LinkError):
            link(parse("{Q(A) | ∃r ∈ R, r ∈ S[Q.A = r.A]}"))

    def test_lateral_sees_earlier_bindings(self):
        query = parse(
            "{Q(A) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y[Z.B = y.A ∧ x.A < y.A]}"
            "[Q.A = z.B]}"
        )
        result = link(query)  # must not raise: x is visible inside Z
        assert result.relation_names() == ["X", "Y"]

    def test_recursion_head_reference(self):
        query = parse(
            "{A(s, t) | ∃p ∈ P[A.s = p.s ∧ A.t = p.t] ∨ "
            "∃p2 ∈ P, a2 ∈ A[A.s = p2.s ∧ p2.t = a2.s ∧ A.t = a2.t]}"
        )
        result = link(query)
        assert "A" in result.relation_names()

    def test_head_attr_must_exist(self):
        with pytest.raises(LinkError):
            link(parse("{Q(A) | ∃r ∈ R[Q.B = r.A ∧ Q.A = r.A]}"))


class TestClassification:
    def test_assignment_vs_comparison(self):
        result = link(parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}"))
        predicates = predicates_of(result)
        assert result.is_assignment(predicates["Q.A = r.A"])
        assert not result.is_assignment(predicates["r.B = s.B"])
        assert not result.is_assignment(predicates["s.C = 0"])

    def test_assignment_target(self):
        result = link(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        predicate = next(iter(result.roles))
        head, attr = result.assignment_target(predicate)
        assert head.name == "Q" and attr == "A"

    def test_reversed_assignment(self):
        result = link(parse("{Q(A) | ∃r ∈ R[r.A = Q.A]}"))
        predicate = next(iter(result.roles))
        assert result.is_assignment(predicate)

    def test_aggregation_predicate(self):
        result = link(
            parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
        )
        predicates = predicates_of(result)
        agg = predicates["Q.sm = sum(r.B)"]
        assert result.is_aggregation(agg)
        assert result.is_assignment(agg)

    def test_aggregate_comparison_not_assignment(self):
        result = link(
            parse("∃r ∈ R[∃s ∈ S, γ ∅[r.id = s.id ∧ r.q = count(s.d)]]")
        )
        predicates = predicates_of(result)
        test = predicates["r.q = count(s.d)"]
        assert result.is_aggregation(test)
        assert not result.is_assignment(test)

    def test_head_param_under_negation_is_comparison(self):
        result = link(
            parse(
                "{S(l, r) | ¬(∃x ∈ L[x.d = S.l ∧ ¬(∃y ∈ L[y.b = x.b ∧ y.d = S.r])])}"
            )
        )
        assert result.head_params  # S.l / S.r read as inputs
        for predicate in result.roles:
            assert not result.is_assignment(predicate)


class TestScopes:
    def test_scope_tree_depth(self):
        result = link(
            parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[s.A = r.A])]}")
        )
        root = result.root_scope
        assert root.depth() == 0
        quant_scope = root.children[0]
        inner = quant_scope.children[0]
        assert inner.depth() == 2

    def test_lookup_innermost_out(self):
        result = link(parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[s.B = r.B]]}"))
        inner = result.root_scope.children[0].children[0]
        assert isinstance(inner.lookup("s"), n.Binding)
        assert isinstance(inner.lookup("r"), n.Binding)
        assert isinstance(inner.lookup("Q"), n.Head)
        assert inner.lookup("zzz") is None

    def test_links_listing(self):
        result = link(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        assert len(result.links()) == 2  # Q.A and r.A

    def test_join_annotation_links(self):
        result = link(
            parse("{Q(A) | ∃r ∈ R, s ∈ S, left(r, s)[Q.A = r.A ∧ r.B = s.B]}")
        )
        join_vars = [a for a in result.resolutions if isinstance(a, n.JoinVar)]
        assert len(join_vars) == 2

    def test_join_annotation_unbound_var(self):
        with pytest.raises(LinkError):
            link(parse("{Q(A) | ∃r ∈ R, left(r, zz)[Q.A = r.A]}"))
