"""Shared fixtures: paper instances and common databases."""

import pytest

from repro.data import Database
from repro.workloads import instances


@pytest.fixture
def rs_db():
    """R(A,B) joined to S(B,C): the eq. (1) shape."""
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    db.create("S", ("B", "C"), [(10, 0), (20, 5), (30, 0)])
    return db


@pytest.fixture
def grouped_db():
    """R(A,B) with duplicate groups for aggregate tests."""
    db = Database()
    db.create("R", ("A", "B"), [(1, 10), (1, 20), (2, 5)])
    db.create("S", ("A", "B"), [(0, 7), (1, 3)])
    return db


@pytest.fixture
def count_bug_db():
    return instances.count_bug_instance()


@pytest.fixture
def payroll_db():
    return instances.payroll_instance()


@pytest.fixture
def likes_db():
    return instances.likes_instance()


@pytest.fixture
def ancestor_db():
    return instances.ancestor_instance()


def rows_as_tuples(relation):
    """Deterministic list of plain tuples in schema order (test helper)."""
    return [tuple(row[a] for a in relation.schema) for row in relation.sorted_rows()]
