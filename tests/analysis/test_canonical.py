"""Canonicalization: invariance under renaming, reordering, orientation."""

import pytest
from hypothesis import given, settings

from repro.analysis.canonical import canonical_text, canonicalize
from repro.core import nodes as n
from repro.core.parser import parse

from ..core.test_roundtrip import collections


class TestInvariances:
    def test_variable_renaming(self):
        a = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        b = parse("{Q(A) | ∃foo ∈ R, bar ∈ S[Q.A = foo.A ∧ foo.B = bar.B]}")
        assert canonical_text(a) == canonical_text(b)

    def test_conjunct_order(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 1 ∧ r.C = 2]}")
        b = parse("{Q(A) | ∃r ∈ R[r.C = 2 ∧ Q.A = r.A ∧ r.B = 1]}")
        assert canonical_text(a) == canonical_text(b)

    def test_binding_order(self):
        a = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        b = parse("{Q(A) | ∃s ∈ S, r ∈ R[Q.A = r.A ∧ r.B = s.B]}")
        assert canonical_text(a) == canonical_text(b)

    def test_comparison_orientation(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 1]}")
        b = parse("{Q(A) | ∃r ∈ R[r.A = Q.A ∧ 1 = r.B]}")
        assert canonical_text(a) == canonical_text(b)

    def test_gt_becomes_lt(self):
        a = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B > s.B]}")
        b = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ s.B < r.B]}")
        assert canonical_text(a) == canonical_text(b)

    def test_neq_spelling(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B != 1]}")
        b = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B <> 1]}")
        assert canonical_text(a) == canonical_text(b)

    def test_different_semantics_stay_apart(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[r.B = s.B]]}")
        b = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[r.B = s.B])]}")
        assert canonical_text(a) != canonical_text(b)

    def test_relation_names_matter_by_default(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b = parse("{Q(A) | ∃r ∈ S[Q.A = r.A]}")
        assert canonical_text(a) != canonical_text(b)

    def test_anonymize_relations(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b = parse("{Q(A) | ∃r ∈ S[Q.A = r.A]}")
        assert canonical_text(a, anonymize_relations=True) == canonical_text(
            b, anonymize_relations=True
        )

    def test_original_not_mutated(self):
        a = parse("{Q(A) | ∃zz ∈ R[Q.A = zz.A]}")
        canonicalize(a)
        assert a.body.bindings[0].var == "zz"


class TestProperties:
    @settings(max_examples=30, deadline=None)
    @given(collections())
    def test_idempotent(self, coll):
        once = canonical_text(coll)
        twice = canonical_text(parse(once))
        assert once == twice

    @settings(max_examples=30, deadline=None)
    @given(collections())
    def test_canonical_form_parses(self, coll):
        parse(canonical_text(coll))

    @settings(max_examples=20, deadline=None)
    @given(collections())
    def test_clone_has_same_canonical_form(self, coll):
        assert canonical_text(coll) == canonical_text(n.clone(coll))
