"""Pattern-vocabulary detectors over the paper's example queries."""

from repro.analysis import detect_patterns
from repro.core.parser import parse
from repro.workloads import paper_examples


class TestAggregationPatterns:
    def test_fio(self):
        patterns = detect_patterns(paper_examples.arc("eq3"))
        assert "fio-aggregation" in patterns
        assert "foi-aggregation" not in patterns

    def test_foi(self):
        patterns = detect_patterns(paper_examples.arc("eq7"))
        assert "foi-aggregation" in patterns
        assert "lateral" in patterns
        assert "correlated-lateral" in patterns

    def test_having_wrapper_is_fio_plus_lateral(self):
        patterns = detect_patterns(paper_examples.arc("eq8"))
        assert "fio-aggregation" in patterns
        assert "lateral" in patterns
        # The inner collection is uncorrelated: it exports dept itself.
        assert "correlated-lateral" not in patterns

    def test_aggregate_test(self):
        patterns = detect_patterns(paper_examples.arc("eq27"))
        assert "aggregate-test" in patterns


class TestJoinPatterns:
    def test_semijoin(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[r.B = s.B]]}")
        assert "semijoin" in detect_patterns(query)

    def test_antijoin(self):
        query = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[r.B = s.B])]}")
        assert "antijoin" in detect_patterns(query)

    def test_division_unique_set(self):
        patterns = detect_patterns(paper_examples.arc("eq22"))
        assert "division" in patterns
        assert "antijoin" in patterns

    def test_outer_join(self):
        patterns = detect_patterns(paper_examples.arc("eq18"))
        assert "outer-join" in patterns

    def test_plain_join_has_no_special_patterns(self):
        patterns = detect_patterns(paper_examples.arc("eq1"))
        assert not patterns & {"semijoin", "antijoin", "division", "outer-join"}


class TestStructuralPatterns:
    def test_recursion(self):
        assert "recursion" in detect_patterns(paper_examples.arc("eq16"))
        assert "disjunction" in detect_patterns(paper_examples.arc("eq16"))

    def test_correlated_lateral_eq2(self):
        patterns = detect_patterns(paper_examples.arc("eq2"))
        assert "correlated-lateral" in patterns

    def test_program_patterns_union(self):
        program = parse(paper_examples.ARC["eq23_24"])
        patterns = detect_patterns(program)
        assert "antijoin" in patterns

    def test_sentence(self):
        patterns = detect_patterns(paper_examples.arc("eq13"))
        assert "aggregate-test" in patterns


class TestVocabularyClaims:
    def test_souffle_aggregation_is_foi(self):
        """'It lets us point at a query in Soufflé and say FOI aggregation.'"""
        from repro.data import Database
        from repro.frontends import datalog

        db = Database()
        db.create("R", ("a", "b"))
        db.create("S", ("a", "b"))
        program = datalog.to_arc(
            "Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.", database=db
        )
        assert "foi-aggregation" in detect_patterns(program)

    def test_sql_group_by_is_fio(self):
        from repro.data import Database
        from repro.frontends.sql import to_arc

        db = Database()
        db.create("R", ("A", "B"))
        arc = to_arc("select R.A, sum(R.B) sm from R group by R.A", database=db)
        assert "fio-aggregation" in detect_patterns(arc)
