"""Tests for corpus-level analysis and intent-based benchmark scoring."""

import pytest

from repro.analysis import QueryCorpus, score_candidate
from repro.core.parser import parse
from repro.data import Database
from repro.frontends.sql import to_arc
from repro.workloads import paper_examples


@pytest.fixture
def db():
    database = Database()
    database.create("R", ("A", "B"))
    database.create("S", ("B", "C"))
    return database


@pytest.fixture
def corpus(db):
    corpus = QueryCorpus()
    corpus.add("join", to_arc("select R.A from R, S where R.B = S.B", database=db))
    corpus.add(
        "join_renamed", to_arc("select x.A from R x, S y where x.B = y.B", database=db)
    )
    corpus.add(
        "semi",
        to_arc(
            "select R.A from R where exists (select 1 from S where S.B = R.B)",
            database=db,
        ),
    )
    corpus.add(
        "anti",
        to_arc(
            "select R.A from R where not exists (select 1 from S where S.B = R.B)",
            database=db,
        ),
    )
    corpus.add(
        "grouped",
        to_arc("select R.A, sum(R.B) sm from R group by R.A", database=db),
    )
    return corpus


class TestCorpus:
    def test_basic_accounting(self, corpus):
        assert len(corpus) == 5
        assert "join" in corpus
        assert corpus.names() == ["anti", "grouped", "join", "join_renamed", "semi"]

    def test_duplicate_rejected(self, corpus, db):
        with pytest.raises(ValueError):
            corpus.add("join", to_arc("select R.A from R", database=db))

    def test_pattern_classes(self, corpus):
        classes = corpus.pattern_classes()
        assert ["join", "join_renamed"] in classes
        assert ["semi"] in classes and ["anti"] in classes

    def test_histogram(self, corpus):
        histogram = corpus.pattern_histogram()
        assert histogram.get("semijoin") == 1
        assert histogram.get("antijoin") == 1
        assert histogram.get("fio-aggregation") == 1

    def test_similarity_matrix_properties(self, corpus):
        matrix = corpus.similarity_matrix()
        for name in corpus.names():
            assert matrix[(name, name)] == 1.0
        for (a, b), score in matrix.items():
            assert matrix[(b, a)] == score
            assert 0.0 <= score <= 1.0

    def test_nearest(self, corpus, db):
        probe = to_arc("select R.A from R, S where R.B = S.B and R.A < 5", database=db)
        ranked = corpus.nearest(probe, k=2)
        assert ranked[0][0] in ("join", "join_renamed")

    def test_feature_table(self, corpus):
        table = corpus.feature_table()
        assert table["anti"]["negations"] == 1
        assert table["grouped"]["grouping_scopes"] == 1


class TestBenchmarkScoring:
    def test_exact(self, db):
        gold = to_arc("select R.A from R, S where R.B = S.B", database=db)
        candidate = to_arc("select x.A from R x, S y where y.B = x.B", database=db)
        score = score_candidate(gold, candidate)
        assert score.exact_pattern and score.grade == "exact"

    def test_shape_only(self, db):
        db.create("T", ("A", "B"))
        db.create("U", ("B", "C"))
        gold = to_arc("select R.A from R, S where R.B = S.B", database=db)
        candidate = to_arc("select T.A from T, U where T.B = U.B", database=db)
        score = score_candidate(gold, candidate)
        assert not score.exact_pattern and score.same_shape
        assert score.grade == "pattern"

    def test_partial(self, db):
        gold = to_arc("select R.A from R, S where R.B = S.B", database=db)
        candidate = to_arc(
            "select R.A from R, S where R.B = S.B and R.A < 3", database=db
        )
        score = score_candidate(gold, candidate)
        assert not score.same_shape
        assert score.intent_similarity > 0.7
        assert score.grade == "partial"

    def test_miss_with_pattern_diagnosis(self, db):
        gold = to_arc(
            "select R.A from R where not exists (select 1 from S where S.B = R.B)",
            database=db,
        )
        candidate = to_arc(
            "select R.A, sum(R.B) sm from R group by R.A", database=db
        )
        score = score_candidate(gold, candidate)
        assert "antijoin" in score.missing_patterns
        assert "fio-aggregation" in score.spurious_patterns

    def test_paper_examples_scored(self):
        gold = paper_examples.arc("eq3")
        candidate = paper_examples.arc("eq7")
        score = score_candidate(gold, candidate)
        assert not score.exact_pattern
        assert "foi-aggregation" in score.spurious_patterns
