"""Intent-based similarity: fingerprints, similarity scores, the E19 claims."""

import pytest

from repro.analysis import (
    feature_similarity,
    fingerprint,
    pattern_equal,
    pattern_summary,
    same_pattern,
    similarity,
    similarity_report,
    surface_similarity,
)
from repro.core.parser import parse
from repro.workloads import paper_examples


class TestFingerprints:
    def test_stable(self):
        a = paper_examples.arc("eq1")
        assert fingerprint(a) == fingerprint(paper_examples.arc("eq1"))

    def test_renaming_invariant(self):
        a = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B]}")
        b = parse("{Q(A) | ∃x ∈ S, w ∈ R[Q.A = w.A ∧ x.B = w.B]}")
        assert same_pattern(a, b)

    def test_distinguishes_semantics(self):
        semi = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ∃s ∈ S[r.B = s.B]]}")
        anti = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ ¬(∃s ∈ S[r.B = s.B])]}")
        assert not same_pattern(semi, anti)

    def test_shape_fingerprint(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b = parse("{Q(A) | ∃r ∈ T99[Q.A = r.A]}")
        assert not same_pattern(a, b)
        assert same_pattern(a, b, anonymize_relations=True)


class TestSimilarity:
    def test_equal_is_one(self):
        a = paper_examples.arc("eq3")
        assert similarity(a, a) == 1.0

    def test_range(self):
        a = paper_examples.arc("eq1")
        b = paper_examples.arc("eq22")
        assert 0.0 <= similarity(a, b) < 1.0

    def test_symmetry(self):
        a = paper_examples.arc("eq3")
        b = paper_examples.arc("eq7")
        assert similarity(a, b) == pytest.approx(similarity(b, a))

    def test_close_patterns_score_higher(self):
        base = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 1]}")
        near = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 2]}")
        far = paper_examples.arc("eq22")
        assert similarity(base, near) > similarity(base, far)


class TestPaperClaim:
    """Section 1: surface syntax is a poor proxy for intent."""

    def test_equivalent_queries_with_different_surface(self):
        """Scalar-subquery and lateral-join SQL differ textually but map to
        the same ARC pattern (Figs. 5a/5b)."""
        from repro.data import Database
        from repro.frontends.sql import to_arc

        db = Database()
        db.create("R", ("A", "B"))
        sql_a = paper_examples.SQL["fig5a"]
        sql_b = paper_examples.SQL["fig5b"]
        arc_a = to_arc(sql_a, database=db)
        arc_b = to_arc(sql_b, database=db)
        assert pattern_equal(arc_a, arc_b)
        assert surface_similarity(sql_a, sql_b) < 0.8

    def test_similar_surface_different_semantics(self):
        """EXISTS vs NOT EXISTS: one token apart, opposite meaning."""
        sql_a = "select R.A from R where exists (select 1 from S where S.A = R.A)"
        sql_b = "select R.A from R where not exists (select 1 from S where S.A = R.A)"
        assert surface_similarity(sql_a, sql_b) > 0.9
        from repro.data import Database
        from repro.frontends.sql import to_arc

        db = Database()
        db.create("R", ("A",))
        db.create("S", ("A",))
        arc_a = to_arc(sql_a, database=db)
        arc_b = to_arc(sql_b, database=db)
        assert not pattern_equal(arc_a, arc_b)
        assert similarity(arc_a, arc_b) < 1.0


class TestFeatureSummary:
    def test_summary_counts(self):
        # eq. (22) quantifies l1..l6 (6 scopes) under 5 negations.
        features = pattern_summary(paper_examples.arc("eq22"))
        assert features["negations"] == 5
        assert features["scopes"] == 6

    def test_feature_similarity_bounds(self):
        a = paper_examples.arc("eq1")
        b = paper_examples.arc("eq3")
        score = feature_similarity(a, b)
        assert 0.0 <= score <= 1.0
        assert feature_similarity(a, a) == 1.0

    def test_report(self):
        a = paper_examples.arc("eq3")
        b = paper_examples.arc("eq7")
        report = similarity_report(a, b, sql_a="select 1", sql_b="select 2")
        assert set(report) >= {
            "pattern_equal",
            "intent_similarity",
            "canonical_a",
            "surface_similarity",
        }
        assert not report["pattern_equal"]
