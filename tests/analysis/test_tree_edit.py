"""Zhang–Shasha tree edit distance: correctness and metric properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.tree_edit import (
    LabelTree,
    arc_distance,
    from_arc,
    tree_edit_distance,
)
from repro.core.parser import parse


def leaf(label):
    return LabelTree(label)


class TestKnownDistances:
    def test_identical(self):
        a = LabelTree("f", [leaf("a"), leaf("b")])
        b = LabelTree("f", [leaf("a"), leaf("b")])
        assert tree_edit_distance(a, b) == 0

    def test_relabel(self):
        a = LabelTree("f", [leaf("a")])
        b = LabelTree("f", [leaf("x")])
        assert tree_edit_distance(a, b) == 1

    def test_insert(self):
        a = LabelTree("f", [leaf("a")])
        b = LabelTree("f", [leaf("a"), leaf("b")])
        assert tree_edit_distance(a, b) == 1

    def test_delete_subtree(self):
        a = LabelTree("f", [LabelTree("g", [leaf("a"), leaf("b")])])
        b = LabelTree("f", [])
        assert tree_edit_distance(a, b) == 3

    def test_classic_zhang_shasha_example(self):
        # The d->c relabel plus node moves from the original paper's example.
        a = LabelTree(
            "f", [LabelTree("d", [leaf("a"), LabelTree("c", [leaf("b")])]), leaf("e")]
        )
        b = LabelTree(
            "f", [LabelTree("c", [LabelTree("d", [leaf("a"), leaf("b")])]), leaf("e")]
        )
        assert tree_edit_distance(a, b) == 2

    def test_single_nodes(self):
        assert tree_edit_distance(leaf("a"), leaf("a")) == 0
        assert tree_edit_distance(leaf("a"), leaf("b")) == 1


label_trees = st.recursive(
    st.builds(LabelTree, st.sampled_from("abcde")),
    lambda children: st.builds(
        LabelTree, st.sampled_from("fgh"), st.lists(children, max_size=3)
    ),
    max_leaves=8,
)


class TestMetricProperties:
    @settings(max_examples=40, deadline=None)
    @given(label_trees)
    def test_identity(self, tree):
        assert tree_edit_distance(tree, tree) == 0

    @settings(max_examples=40, deadline=None)
    @given(label_trees, label_trees)
    def test_symmetry(self, a, b):
        assert tree_edit_distance(a, b) == tree_edit_distance(b, a)

    @settings(max_examples=25, deadline=None)
    @given(label_trees, label_trees, label_trees)
    def test_triangle_inequality(self, a, b, c):
        ab = tree_edit_distance(a, b)
        bc = tree_edit_distance(b, c)
        ac = tree_edit_distance(a, c)
        assert ac <= ab + bc

    @settings(max_examples=40, deadline=None)
    @given(label_trees, label_trees)
    def test_bounded_by_sizes(self, a, b):
        assert tree_edit_distance(a, b) <= a.size() + b.size()


class TestArcDistance:
    def test_renaming_invariant(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b = parse("{Q(A) | ∃zz ∈ R[Q.A = zz.A]}")
        assert arc_distance(a, b) == 0

    def test_extra_predicate_costs_little(self):
        a = parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}")
        b = parse("{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B = 1]}")
        assert 0 < arc_distance(a, b) <= 3

    def test_from_arc_labels(self):
        tree = from_arc(parse("{Q(A) | ∃r ∈ R[Q.A = r.A]}"))
        assert tree.label == "COLLECTION"
        assert tree.size() >= 4
