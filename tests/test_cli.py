"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import Relation, csvio


@pytest.fixture
def csv_r(tmp_path):
    rel = Relation("R", ("A", "B"), [(1, 10), (2, 20), (3, 30)])
    path = tmp_path / "r.csv"
    csvio.write_csv(rel, str(path))
    return f"{path}:R"


class TestTranslate:
    def test_arc_to_alt(self, capsys):
        code = main(["translate", "--to", "alt", "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 0
        out = capsys.readouterr().out
        assert "COLLECTION" in out and "BINDING: r ∈ R" in out

    def test_sql_to_arc(self, capsys):
        code = main(
            ["translate", "--from", "sql", "--to", "arc", "select R.A from R"]
        )
        assert code == 0
        assert "∃" in capsys.readouterr().out

    def test_arc_to_sql(self, capsys):
        code = main(["translate", "--to", "sql", "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 0
        assert "select" in capsys.readouterr().out

    def test_datalog_to_higraph(self, capsys):
        code = main(
            ["translate", "--from", "datalog", "--to", "higraph", "Q(x) :- R(x)."]
        )
        assert code == 0
        assert "canvas" in capsys.readouterr().out

    def test_trc_normalization(self, capsys):
        code = main(
            ["translate", "--from", "trc", "{r.A | r ∈ R}"]
        )
        assert code == 0
        assert "Q.A = r.A" in capsys.readouterr().out

    def test_svg_output(self, capsys):
        code = main(["translate", "--to", "svg", "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 0
        assert capsys.readouterr().out.startswith("<svg")

    def test_parse_error_exit_code(self, capsys):
        code = main(["translate", "{broken"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestValidate:
    def test_valid(self, capsys):
        code = main(["validate", "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 0
        assert "OK" in capsys.readouterr().out

    def test_invalid(self, capsys):
        code = main(["validate", "{Q(sm) | ∃r ∈ R[Q.sm = sum(r.B)]}"])
        assert code == 1
        assert "grouping-required" in capsys.readouterr().out

    def test_abstract_allowed(self, capsys):
        query = "{S(l) | ¬(∃x ∈ L[x.d = S.l])}"
        assert main(["validate", query]) == 1
        assert main(["validate", "--allow-abstract", query]) == 0


class TestEval:
    def test_eval_csv(self, capsys, csv_r):
        code = main(
            ["eval", "--db", csv_r, "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 10]}"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2" in out and "3" in out

    def test_eval_sql_with_conventions(self, capsys, csv_r):
        code = main(
            [
                "eval",
                "--from",
                "sql",
                "--db",
                csv_r,
                "--conventions",
                "sql",
                "select sum(R.B) sm from R",
            ]
        )
        assert code == 0
        assert "60" in capsys.readouterr().out

    def test_sentence_prints_truth(self, capsys, csv_r):
        code = main(["eval", "--db", csv_r, "∃r ∈ R[r.A = 1]"])
        assert code == 0
        assert "TRUE" in capsys.readouterr().out

    def test_repeat_prints_cold_and_warm_timings(self, capsys, csv_r):
        code = main(
            [
                "eval",
                "--db",
                csv_r,
                "--conventions",
                "sql",
                "--backend",
                "sqlite",
                "--repeat",
                "3",
                "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 10]}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "run 1:" in out and "(cold)" in out
        assert "run 3:" in out
        # The result table itself still prints exactly once.
        assert out.count("A\n-") == 1

    def test_repeat_default_prints_no_timings(self, capsys, csv_r):
        code = main(["eval", "--db", csv_r, "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 0
        out = capsys.readouterr().out
        assert "run 1:" not in out
        assert "decorrelation:" not in out

    def test_repeat_prints_decorrelation_counters(self, capsys, csv_r):
        theta = (
            "{Q(A, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ R, γ ∅"
            "[s.A < r.A ∧ X.sm = sum(s.B)]}[Q.A = r.A ∧ Q.sm = x.sm]}"
        )
        code = main(
            [
                "eval",
                "--db",
                csv_r,
                "--conventions",
                "sql",
                "--repeat",
                "2",
                theta,
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # The θ lateral band-decorrelates: the index builds once (cold run)
        # and the warm run probes it; the counters line shows both.
        assert "decorrelation:" in out
        assert "band_index_builds=1" in out
        assert "lateral_reevals=0" in out
        assert "tribucket_probes=0" in out

    def test_contradictory_engine_flags_error(self, capsys, csv_r):
        code = main(
            [
                "eval",
                "--db",
                csv_r,
                "--no-planner",
                "--backend",
                "sqlite",
                "{Q(A) | ∃r ∈ R[Q.A = r.A]}",
            ]
        )
        assert code == 2
        assert "--no-planner" in capsys.readouterr().err


class TestServeCommand:
    def test_parser_wires_serve(self):
        from repro.cli import build_parser, cmd_serve

        args = build_parser().parse_args(
            ["serve", "--db", "r.csv:R", "--port", "0", "--backend", "sqlite"]
        )
        assert args.func is cmd_serve
        assert args.port == 0 and args.backend == "sqlite"
        assert args.quiet  # request logging is opt-in (--log-requests)

    def test_serve_end_to_end(self, capsys, csv_r):
        """cmd_serve really binds a socket and answers; driven by swapping
        serve_forever for handle_request so the command returns."""
        import json
        import threading
        import urllib.request

        from repro.api.serve import QueryServer
        from repro.cli import main as cli_main

        answered = {}
        original = QueryServer.serve_forever

        def two_requests(self, poll_interval=0.5):
            url = self.url

            def drive():
                body = json.dumps(
                    {"query": "{Q(A) | ∃r ∈ R[Q.A = r.A ∧ r.B > 10]}"}
                ).encode()
                request = urllib.request.Request(
                    url + "/query", body, {"Content-Type": "application/json"}
                )
                with urllib.request.urlopen(request, timeout=10) as resp:
                    answered["status"] = resp.status
                    answered["body"] = json.load(resp)

            thread = threading.Thread(target=drive)
            thread.start()
            self.handle_request()
            thread.join(timeout=10)

        QueryServer.serve_forever = two_requests
        try:
            code = cli_main(
                ["serve", "--db", csv_r, "--port", "0", "--conventions", "sql"]
            )
        finally:
            QueryServer.serve_forever = original
        assert code == 0
        assert answered["status"] == 200
        assert answered["body"]["rows"] == [[2], [3]]
        assert "serving on http://127.0.0.1:" in capsys.readouterr().out


class TestPatterns:
    def test_patterns_report(self, capsys):
        code = main(
            [
                "patterns",
                "--from",
                "sql",
                "select R.A from R where not exists (select 1 from S where S.A = R.A)",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "antijoin" in out and "fingerprint:" in out

    def test_bad_db_spec(self, capsys):
        code = main(["eval", "--db", "nocolon", "{Q(A) | ∃r ∈ R[Q.A = r.A]}"])
        assert code == 2
