"""The paper's proposed NL2SQL architecture, end to end (Section 4).

Natural language -> ARC (structurally constrained) -> validate -> SQL,
with the ALT/higraph modalities available at every step for machine and
human verification.

Run:  python examples/nl2sql_pipeline.py
"""

from repro.nl import Nl2ArcPipeline
from repro.workloads.instances import employees_demo


def main():
    db = employees_demo()
    pipeline = Nl2ArcPipeline(database=db)

    print("Schema: Employee(name, dept, salary)")
    print(db["Employee"].to_table())

    requests = [
        "average salary per department",
        "departments with total salary at least 100",
        "employees earning more than their department average",
        "departments without any employee earning over 80",
        "how many employees are there",
        "please draw me a pelican riding a bicycle",  # no template: fails cleanly
    ]

    for request in requests:
        print("\n" + "=" * 72)
        print(f"REQUEST: {request}")
        result = pipeline.run(request)
        if not result.ok:
            print(f"  -> pipeline error: {result.error}")
            continue
        print(f"  matched template: {result.matched_rule}")
        print(f"  ARC intent:  {result.comprehension}")
        print("  validation:  OK")
        print("  SQL rendering:")
        for line in result.sql.splitlines():
            print(f"    {line}")
        print("  result:")
        for line in result.result.to_table().splitlines():
            print(f"    {line}")

    # Intent-based comparison of generations (the benchmarking question).
    print("\n" + "=" * 72)
    print("Intent-based comparison of two phrasings:")
    from repro.analysis import pattern_equal

    a = pipeline.run("average salary per department")
    b = pipeline.run("avg salary by department")
    print(f"  {a.request!r}  vs  {b.request!r}")
    print(f"  pattern-equal: {pattern_equal(a.arc, b.arc)}")

    print("\nHuman-facing modality of the last generation (higraph):")
    print(a.higraph)


if __name__ == "__main__":
    main()
