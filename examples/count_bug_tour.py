"""A guided tour of the count bug (Section 3.2 of the paper).

Shows how ARC's explicit vocabulary diagnoses a classic decorrelation bug:
the difference between an aggregate used as a *test* over a γ∅ scope
(version 1) and a keyed grouping joined back (version 2), and why the
left-join rewrite (version 3) is the correct decorrelation.

Run:  python examples/count_bug_tour.py
"""

from repro import evaluate, parse, render_alt
from repro.analysis import detect_patterns
from repro.core import rewrites
from repro.core.conventions import SQL_CONVENTIONS
from repro.frontends.sql import to_arc
from repro.workloads import instances, paper_examples


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    db = instances.count_bug_instance()
    print("Instance: R(id, q) = {(9, 0)},  S(id, d) = ∅")

    versions = {
        "version 1 (eq. 27, correlated scalar test)": paper_examples.ARC["eq27"],
        "version 2 (eq. 28, naive decorrelation — THE BUG)": paper_examples.ARC["eq28"],
        "version 3 (eq. 29, left-join decorrelation)": paper_examples.ARC["eq29"],
    }
    for name, text in versions.items():
        banner(name)
        query = parse(text)
        print(text)
        print("\nALT modality:")
        print(render_alt(query))
        result = evaluate(query, db, SQL_CONVENTIONS)
        print(f"\nresult: {[row['id'] for row in result.sorted_rows()] or '∅'}")
        print(f"patterns: {sorted(detect_patterns(query))}")

    banner("The same three queries through the SQL frontend (Figs. 21a-c)")
    for key in ("fig21a", "fig21b", "fig21c"):
        arc = to_arc(paper_examples.SQL[key], database=db)
        result = evaluate(arc, db, SQL_CONVENTIONS)
        print(f"{key}: {[row['id'] for row in result.sorted_rows()] or '∅'}")

    banner("Automatic rewrites from version 1")
    v1 = parse(paper_examples.ARC["eq27"])
    naive = rewrites.decorrelate_scalar_naive(v1)
    correct = rewrites.decorrelate_scalar(v1)
    print("decorrelate_scalar_naive ->", [r["id"] for r in evaluate(naive, db, SQL_CONVENTIONS)] or "∅", "(reproduces the bug)")
    print("decorrelate_scalar       ->", [r["id"] for r in evaluate(correct, db, SQL_CONVENTIONS)], "(correct)")

    banner("Why: γ∅ vs keyed grouping over empty input")
    print(
        "γ∅ produces exactly ONE group even over empty input (count = 0,\n"
        "so r.q = 0 holds and id 9 survives); grouping on s.id over empty\n"
        "S produces ZERO groups, so the join in version 2 loses the row.\n"
        "Version 3 preserves the row by left-joining R before grouping."
    )


if __name__ == "__main__":
    main()
