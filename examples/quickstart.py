"""Quickstart: parse, validate, render, and evaluate an ARC query.

Run:  python examples/quickstart.py
"""

from repro import Database, evaluate, parse, render_alt, validate
from repro.backends.comprehension import render, render_ascii
from repro.backends.sql_render import to_sql
from repro.core import build_higraph, render_higraph_ascii


def main():
    # 1. A database: base relations are plain named-schema tables.
    db = Database()
    db.create("R", ["A", "B"], [(1, 10), (2, 20), (3, 30)])
    db.create("S", ["B", "C"], [(10, 0), (20, 5), (30, 0)])

    # 2. A query in ARC's comprehension modality (eq. (1) of the paper).
    #    The ASCII spelling `exists r in R, s in S[...]` works too.
    query = parse("{Q(A) | ∃r ∈ R, s ∈ S[Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")

    # 3. Validate: strict scoping, clean heads, grouping legality.
    validate(query, database=db).raise_if_errors()

    # 4. The three modalities of the same relational core.
    print("— comprehension (Unicode) —")
    print(render(query))
    print("\n— comprehension (ASCII) —")
    print(render_ascii(query))
    print("\n— Abstract Language Tree (Fig. 2a) —")
    print(render_alt(query, include_links=True))
    print("\n— higraph / Relational Diagram (Fig. 2b) —")
    print(render_higraph_ascii(build_higraph(query, database=db)))
    print("\n— SQL rendering —")
    print(to_sql(query))

    # 5. Evaluate under the default set-semantics conventions.
    result = evaluate(query, db)
    print("\n— result —")
    print(result.to_table())

    # 6. Grouped aggregation: the FIO pattern of Fig. 4.
    grouped = parse("{Q(A, sm) | ∃r ∈ R, γ r.A[Q.A = r.A ∧ Q.sm = sum(r.B)]}")
    print("\n— grouped aggregate —")
    print(evaluate(grouped, db).to_table())


if __name__ == "__main__":
    main()
