"""ARC as a Rosetta Stone: one intent, five surface languages.

The paper's grouped-aggregate running example expressed in SQL, Soufflé
Datalog, Rel, textbook TRC, and ARC itself — every frontend embeds into
the same calculus, results agree, and the *pattern* differences (FIO vs
FOI, shared vs per-aggregate scopes) become visible and nameable.

Run:  python examples/rosetta_stone.py
"""

from repro import Database, evaluate
from repro.analysis import detect_patterns, fingerprint
from repro.backends.comprehension import render
from repro.core.conventions import SET_CONVENTIONS, SOUFFLE_CONVENTIONS
from repro.core.parser import parse
from repro.frontends import datalog, rel, trc
from repro.frontends.sql import to_arc as sql_to_arc


def main():
    db = Database()
    db.create("R", ["a", "b"], [(1, 10), (1, 20), (2, 5), (3, 7), (3, 8)])

    surface = {
        "SQL": (
            "select R.a, sum(R.b) sm from R group by R.a",
            lambda text: sql_to_arc(text, database=db),
            SET_CONVENTIONS,
        ),
        "Soufflé": (
            "Q(a, sm) :- R(a, _), sm = sum b : {R(a, b)}.",
            lambda text: datalog.to_arc(text, database=db),
            SOUFFLE_CONVENTIONS,
        ),
        "Rel": (
            "def Q(a, sm) : sm = sum[(b) : R(a, b)]",
            lambda text: rel.to_arc(text, database=db),
            SET_CONVENTIONS,
        ),
        "ARC (FIO)": (
            "{Q(a, sm) | ∃r ∈ R, γ r.a[Q.a = r.a ∧ Q.sm = sum(r.b)]}",
            parse,
            SET_CONVENTIONS,
        ),
        "ARC (FOI)": (
            "{Q(a, sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅"
            "[r2.a = r.a ∧ X.sm = sum(r2.b)]}[Q.a = r.a ∧ Q.sm = x.sm]}",
            parse,
            SET_CONVENTIONS,
        ),
    }

    reference = None
    for name, (text, translate, conventions) in surface.items():
        arc = translate(text)
        result = evaluate(arc, db, conventions)
        values = sorted(
            (row[result.schema[0]], row[result.schema[1]])
            for row in result.iter_distinct()
        )
        if reference is None:
            reference = values
        status = "AGREES" if values == reference else "DIFFERS!"
        print("=" * 72)
        print(f"{name}:  {text}")
        print(f"  embeds to: {render(arc)[:100]}...")
        print(f"  patterns:  {sorted(detect_patterns(arc))}")
        print(f"  shape fingerprint: {fingerprint(arc, anonymize_relations=True)}")
        print(f"  result: {values}   [{status}]")

    print("=" * 72)
    print(
        "\nThe vocabulary in action: SQL/Rel/ARC-FIO share the FIO pattern;\n"
        "Soufflé and ARC-FOI share the FOI pattern.  Same answers, two\n"
        "relational patterns — and now we can *say* which is which."
    )

    # Textbook TRC joins the party through normalization (Section 2.1).
    db2 = Database()
    db2.create("R", ["A", "B"], [(1, 10), (2, 20)])
    db2.create("S", ["B", "C"], [(10, 0), (20, 5)])
    loose = "{r.A | r ∈ R ∧ ∃s[r.B = s.B ∧ s.C = 0 ∧ s ∈ S]}"
    strict = trc.to_arc(loose)
    print("\nTextbook TRC:", loose)
    print("normalizes to:", render(strict))
    print("result:", [row["A"] for row in evaluate(strict, db2).sorted_rows()])


if __name__ == "__main__":
    main()
