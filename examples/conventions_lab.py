"""Conventions lab: one query, every convention combination (Section 2.6/2.7).

Evaluates the paper's eq. (15) pattern and a NOT IN query under all eight
combinations of {set, bag} x {NULL, ZERO empty-aggregate} x {3VL, 2VL},
demonstrating that conventions are orthogonal switches on the evaluator,
not properties of the language.

Run:  python examples/conventions_lab.py
"""

import itertools

from repro import evaluate, parse
from repro.core.conventions import (
    Conventions,
    EmptyAggregate,
    NullComparison,
    Semantics,
)
from repro.data import Database, NULL
from repro.workloads import instances, paper_examples


def all_conventions():
    for semantics, empty, null in itertools.product(
        Semantics, EmptyAggregate, NullComparison
    ):
        yield Conventions(
            semantics=semantics, empty_aggregate=empty, null_comparison=null
        )


def fmt(relation):
    return [
        tuple("NULL" if v is NULL else v for v in (row[a] for a in relation.schema))
        for row in relation.sorted_rows()
    ]


def main():
    print("Query 1: eq. (15) — sum over an empty correlated set")
    print("Instance: R = {(1, 2)}, S = ∅\n")
    db = instances.conventions_instance()
    query = parse(paper_examples.ARC["eq15"])
    print(f"{'conventions':55}  result")
    print("-" * 75)
    for conventions in all_conventions():
        result = evaluate(query, db, conventions)
        print(f"{conventions.describe():55}  {fmt(result)}")

    print("\nQuery 2: NOT IN with a NULL in S (Fig. 11)")
    db2 = Database()
    db2.create("R", ["A"], [(1,), (2,), (2,)])
    db2.create("S", ["A"], [(1,), (NULL,)])
    notin = parse(paper_examples.ARC["not_in_3vl"])
    print(f"\n{'conventions':55}  result")
    print("-" * 75)
    for conventions in all_conventions():
        result = evaluate(notin, db2, conventions)
        print(f"{conventions.describe():55}  {fmt(result)}")

    print(
        "\nReadings: under 3VL the NULL poisons NOT IN (empty result); under\n"
        "2VL the comparison is decidable and 2 survives — with multiplicity\n"
        "2 under bag semantics, 1 under set semantics.  The query text never\n"
        "changed."
    )


if __name__ == "__main__":
    main()
