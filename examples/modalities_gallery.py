"""A gallery of the paper's figures, regenerated from one AST each.

For every worked example in the paper, render all three modalities —
comprehension text, ALT, and higraph — plus an SVG diagram written to
``examples/out/``.

Run:  python examples/modalities_gallery.py
"""

import os

from repro.backends.comprehension import render
from repro.core import build_higraph, parse, render_alt, render_higraph_ascii, render_svg
from repro.workloads import paper_examples

GALLERY = [
    ("fig2", "eq1", "Fig. 2: the eq. (1) TRC query"),
    ("fig4", "eq3", "Fig. 4: FIO grouped aggregate"),
    ("fig5", "eq7", "Fig. 5: FOI pattern (Klug/Hella/Soufflé)"),
    ("fig6", "eq8", "Fig. 6: multiple aggregates + HAVING"),
    ("fig7", "eq10", "Fig. 7: Hella et al. pattern"),
    ("fig8", "eq12", "Fig. 8: Rel pattern"),
    ("fig10", "eq16", "Fig. 10: recursion (ancestor)"),
    ("fig12", "eq18", "Fig. 12: outer join with literal leaf"),
    ("fig13", "eq15", "Fig. 13: correlated scalar as lateral"),
    ("fig20", "eq26", "Fig. 20: matrix multiplication"),
    ("fig21g", "eq27", "Fig. 21 v1: the count bug"),
    ("fig21h", "eq28", "Fig. 21 v2: naive decorrelation"),
    ("fig21i", "eq29", "Fig. 21 v3: correct decorrelation"),
]


def main():
    out_dir = os.path.join(os.path.dirname(__file__), "out")
    os.makedirs(out_dir, exist_ok=True)

    for slug, key, title in GALLERY:
        query = parse(paper_examples.ARC[key])
        print("\n" + "=" * 72)
        print(title)
        print("=" * 72)
        print("\ncomprehension modality:")
        print(" ", render(query))
        print("\nALT modality:")
        print(render_alt(query))
        higraph = build_higraph(query)
        print("\nhigraph modality:")
        print(render_higraph_ascii(higraph))
        svg_path = os.path.join(out_dir, f"{slug}.svg")
        with open(svg_path, "w") as handle:
            handle.write(render_svg(higraph))
        print(f"\nSVG written to {svg_path}")

    print(f"\nGallery complete: {len(GALLERY)} figures regenerated.")


if __name__ == "__main__":
    main()
